//! ADU lifecycle spans: stitching flight-recorder events into per-ADU
//! causal timelines with per-stage latency attribution and a head-of-line
//! blocking profiler.
//!
//! The flight recorder (see [`crate::trace`]) captures isolated events —
//! an admission here, a TU release there, a delivery somewhere else. This
//! module reassembles them, Dapper-style, into one [`AduSpan`] per ADU:
//!
//! ```text
//! submit → admit (cwnd/rwnd wait) → first-send (pacing wait)
//!        → first-arrival → last-frame-arrival (loss/repair rounds)
//!        → reassembly-complete → deliver
//! ```
//!
//! Every microsecond of an ADU's end-to-end latency is attributed to
//! exactly one stage (the stage taxonomy in [`STAGES`]), and the **HOL
//! stall** — the time a fully-arrived ADU spent blocked behind *other*
//! data before the application could consume it — is computed uniformly
//! for both substrates:
//!
//! * ALF ([`SpanReport`]): `stall = consume − last_arrival`. Out-of-order
//!   delivery makes this ~0 by construction — the paper's central claim,
//!   measured.
//! * Byte stream ([`stream_stalls`]): per-ADU byte range over the stream;
//!   `stall = in-order-delivery of the range − all of its bytes arrived`.
//!   A gap ahead of the range holds it hostage, and the stall grows with
//!   loss.
//!
//! Determinism: stitching is a pure function of the event sequence, so the
//! same seed yields byte-identical reports — and analyzing a JSONL export
//! ([`SpanReport::from_parsed`]) reproduces exactly what the in-process
//! stitcher saw. When the ring wrapped mid-run, the export carries a
//! `meta/truncated` event and spans whose early history was overwritten
//! render an explicit `TRUNCATED` marker instead of silently passing off a
//! partial timeline as a complete one.

use crate::metrics::Histogram;
use crate::trace::{fmt_nanos, Event, ParsedEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The stage taxonomy, in pipeline order. Each maps to the gap between two
/// adjacent span timestamps (see [`AduSpan::stage_nanos`]).
pub const STAGES: [&str; 6] = [
    "admit_wait",   // submit → admit: cwnd/rwnd/window queue wait
    "pace_wait",    // admit → first TU release: token-pacer queue wait
    "first_flight", // first send → first arrival: network transit
    "transfer",     // first → last arrival: spread incl. loss/repair rounds
    "reassemble",   // last arrival → reassembly complete
    "deliver_wait", // complete → application consume (ALF HOL stall share)
];

/// One ADU's stitched lifecycle. All instants are simulated nanoseconds;
/// `None` means the corresponding event was never observed (not offered on
/// this endpoint, lost, or overwritten out of the ring).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AduSpan {
    /// The ADU's application-level name (the stitching key).
    pub adu: String,
    /// Transport id, when any event carried one.
    pub adu_id: Option<u64>,
    /// Application handed the ADU to the transport.
    pub submit_at: Option<u64>,
    /// Admission past the cwnd/rwnd gate (left the submit queue).
    pub admit_at: Option<u64>,
    /// First TU released by the pacer.
    pub first_send_at: Option<u64>,
    /// Last TU released (including repairs).
    pub last_send_at: Option<u64>,
    /// First fragment accepted by the receiver's assembler.
    pub first_arrival_at: Option<u64>,
    /// Last fragment accepted.
    pub last_arrival_at: Option<u64>,
    /// Reassembly completed (ADU released to the delivery queue).
    pub complete_at: Option<u64>,
    /// Receiving application consumed the ADU.
    pub consume_at: Option<u64>,
    /// Loss/repair round events (whole-ADU retx, probes, selective retx).
    pub repair_events: u64,
    /// TUs released for this ADU (first transmission + repairs).
    pub tus_sent: u64,
    /// The transport gave up on this ADU (named loss report).
    pub lost: bool,
    /// The ring wrapped and this span's early history was overwritten —
    /// stage durations that need the missing events are unavailable, and
    /// reports print `TRUNCATED` instead of a partial timeline.
    pub truncated: bool,
}

impl AduSpan {
    /// Duration of one taxonomy stage in nanoseconds, when both of its
    /// bounding events were observed (negative gaps clamp to zero — the
    /// recorder orders same-instant events arbitrarily).
    pub fn stage_nanos(&self, stage: &str) -> Option<u64> {
        let gap = |a: Option<u64>, b: Option<u64>| Some(b?.saturating_sub(a?));
        match stage {
            "admit_wait" => gap(self.submit_at, self.admit_at),
            "pace_wait" => gap(self.admit_at, self.first_send_at),
            "first_flight" => gap(self.first_send_at, self.first_arrival_at),
            "transfer" => gap(self.first_arrival_at, self.last_arrival_at),
            "reassemble" => gap(self.last_arrival_at, self.complete_at),
            "deliver_wait" => gap(self.complete_at, self.consume_at),
            _ => None,
        }
    }

    /// End-to-end nanoseconds: submit → consume (falling back to
    /// reassembly-complete when the consume event is absent).
    pub fn total_nanos(&self) -> Option<u64> {
        let end = self.consume_at.or(self.complete_at)?;
        Some(end.saturating_sub(self.submit_at?))
    }

    /// The ALF HOL-stall metric: time between *all of the ADU's bytes
    /// having arrived* and the application consuming it. Covers both the
    /// reassembly-release gap and any delivery-queue wait; out-of-order
    /// delivery keeps it near zero regardless of what other ADUs are doing.
    pub fn stall_nanos(&self) -> Option<u64> {
        let end = self.consume_at.or(self.complete_at)?;
        Some(end.saturating_sub(self.last_arrival_at?))
    }

    /// Append this span to `out` as one JSONL line (newline included).
    pub fn write_jsonl(&self, out: &mut String) {
        out.push_str("{\"adu\":");
        crate::json::write_escaped(out, &self.adu);
        let opt = |out: &mut String, key: &str, v: Option<u64>| {
            let _ = match v {
                Some(v) => write!(out, ",\"{key}\":{v}"),
                None => write!(out, ",\"{key}\":null"),
            };
        };
        opt(out, "id", self.adu_id);
        opt(out, "submit", self.submit_at);
        opt(out, "admit", self.admit_at);
        opt(out, "first_send", self.first_send_at);
        opt(out, "last_send", self.last_send_at);
        opt(out, "first_arr", self.first_arrival_at);
        opt(out, "last_arr", self.last_arrival_at);
        opt(out, "complete", self.complete_at);
        opt(out, "consume", self.consume_at);
        let _ = write!(
            out,
            ",\"repairs\":{},\"tus\":{},\"lost\":{},\"trunc\":{}}}",
            self.repair_events,
            self.tus_sent,
            u8::from(self.lost),
            u8::from(self.truncated),
        );
        out.push('\n');
    }

    /// Parse a JSONL stream of spans — the inverse of
    /// [`AduSpan::write_jsonl`].
    ///
    /// # Errors
    /// [`crate::json::JsonError`] on malformed lines or missing fields.
    pub fn parse_jsonl(input: &str) -> Result<Vec<AduSpan>, crate::json::JsonError> {
        use crate::json::{self, JsonError, JsonValue};
        let mut spans = Vec::new();
        for line in input.lines().filter(|l| !l.trim().is_empty()) {
            let v = json::parse(line)?;
            let bad = |message| JsonError { message, at: 0 };
            let opt = |k| match v.get(k) {
                Some(JsonValue::Null) => Ok(None),
                Some(n) => n.as_u64().map(Some).ok_or(bad("numeric field")),
                None => Err(bad("missing field")),
            };
            let num = |k| {
                v.get(k)
                    .and_then(JsonValue::as_u64)
                    .ok_or(bad("numeric field"))
            };
            spans.push(AduSpan {
                adu: v
                    .get("adu")
                    .and_then(JsonValue::as_str)
                    .ok_or(bad("adu field"))?
                    .to_string(),
                adu_id: opt("id")?,
                submit_at: opt("submit")?,
                admit_at: opt("admit")?,
                first_send_at: opt("first_send")?,
                last_send_at: opt("last_send")?,
                first_arrival_at: opt("first_arr")?,
                last_arrival_at: opt("last_arr")?,
                complete_at: opt("complete")?,
                consume_at: opt("consume")?,
                repair_events: num("repairs")?,
                tus_sent: num("tus")?,
                lost: num("lost")? != 0,
                truncated: num("trunc")? != 0,
            });
        }
        Ok(spans)
    }
}

/// Per-stage attribution: observations in microseconds over every span
/// that had the stage's bounding events.
#[derive(Debug, Clone)]
pub struct StageStat {
    /// Stage name from [`STAGES`].
    pub stage: &'static str,
    /// Spans contributing an observation.
    pub count: u64,
    /// Total microseconds attributed to this stage across all spans.
    pub total_us: u64,
    /// Mean microseconds.
    pub mean_us: f64,
    /// p50 upper bound (log2-bucket histogram, µs).
    pub p50_us: u64,
    /// p99 upper bound (µs).
    pub p99_us: u64,
    /// Largest single observation (µs).
    pub max_us: u64,
}

/// Aggregate stall statistics (microseconds) over a set of per-ADU stalls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallSummary {
    /// ADUs with a measurable stall (arrival-complete and delivered).
    pub count: u64,
    /// Mean stall, µs.
    pub mean_us: f64,
    /// p99 upper bound, µs.
    pub p99_us: u64,
    /// Worst single stall, µs.
    pub max_us: u64,
}

impl StallSummary {
    fn from_nanos(stalls: impl Iterator<Item = u64>) -> StallSummary {
        let mut h = Histogram::default();
        for ns in stalls {
            h.observe(ns / 1_000);
        }
        StallSummary {
            count: h.count(),
            mean_us: h.mean(),
            p99_us: h.quantile_upper_bound(0.99),
            max_us: h.max(),
        }
    }
}

/// The stitched result: one span per ADU (in order of first appearance in
/// the event stream) plus the ring's truncation count.
#[derive(Debug, Clone, Default)]
pub struct SpanReport {
    /// Per-ADU spans, ordered by first event occurrence.
    pub spans: Vec<AduSpan>,
    /// Events the flight-recorder ring overwrote before export (from the
    /// `meta/truncated` marker; 0 = the record is complete).
    pub truncated_events: u64,
}

impl SpanReport {
    /// Stitch spans from parsed (JSONL-recovered) events. Events must be in
    /// recording order — which the ring guarantees.
    pub fn from_parsed(events: &[ParsedEvent]) -> SpanReport {
        let mut report = SpanReport::default();
        // First-appearance order, keyed by ADU name.
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        // (layer, transport id) → ADU name, for events without a name.
        let mut names: BTreeMap<(String, u64), String> = BTreeMap::new();
        for e in events {
            if e.layer == "meta" && e.kind == "truncated" {
                report.truncated_events += e.a;
                continue;
            }
            let name = match &e.adu {
                Some(n) => {
                    if matches!(
                        e.kind.as_str(),
                        "adu_submit" | "adu_send" | "adu_retx" | "probe"
                    ) {
                        names.insert((e.layer.clone(), e.a), n.clone());
                    }
                    n.clone()
                }
                None => match names.get(&(e.layer.clone(), e.a)) {
                    Some(n) => n.clone(),
                    None => continue, // unattributable (net frames, control)
                },
            };
            let slot = *index.entry(name.clone()).or_insert_with(|| {
                report.spans.push(AduSpan {
                    adu: name.clone(),
                    ..AduSpan::default()
                });
                report.spans.len() - 1
            });
            let span = &mut report.spans[slot];
            let first = |v: &mut Option<u64>, at: u64| {
                if v.is_none() {
                    *v = Some(at);
                }
            };
            let last = |v: &mut Option<u64>, at: u64| *v = Some((*v).unwrap_or(0).max(at));
            match e.kind.as_str() {
                "adu_submit" => {
                    first(&mut span.submit_at, e.at_nanos);
                    span.adu_id = span.adu_id.or(Some(e.a));
                }
                "adu_send" => {
                    first(&mut span.admit_at, e.at_nanos);
                    span.adu_id = span.adu_id.or(Some(e.a));
                }
                "tu_send" => {
                    first(&mut span.first_send_at, e.at_nanos);
                    last(&mut span.last_send_at, e.at_nanos);
                    span.tus_sent += 1;
                }
                "adu_retx" | "probe" | "tu_retx" => span.repair_events += 1,
                "tu_recv" => {
                    first(&mut span.first_arrival_at, e.at_nanos);
                    last(&mut span.last_arrival_at, e.at_nanos);
                }
                "adu_deliver" => {
                    first(&mut span.complete_at, e.at_nanos);
                    // Arrival fallback for exports without tu_recv events:
                    // completion implies all fragments had arrived by now.
                    first(&mut span.last_arrival_at, e.at_nanos);
                    first(&mut span.first_arrival_at, e.at_nanos);
                }
                "adu_consume" => first(&mut span.consume_at, e.at_nanos),
                "adu_lost" => span.lost = true,
                _ => {}
            }
        }
        if report.truncated_events > 0 {
            // The ring wrapped: any span whose submit event is missing may
            // have lost its early history to the overwrite — say so
            // explicitly instead of reporting a partial timeline.
            for span in &mut report.spans {
                if span.submit_at.is_none() {
                    span.truncated = true;
                }
            }
        }
        report
    }

    /// Stitch spans from in-process events plus the ring's overwrite count
    /// (pair with [`crate::Telemetry::trace_events`] /
    /// [`crate::Telemetry::trace_overwritten`]).
    pub fn from_events(events: &[Event], overwritten: u64) -> SpanReport {
        let mut parsed: Vec<ParsedEvent> = Vec::with_capacity(events.len() + 1);
        if overwritten > 0 {
            parsed.push(ParsedEvent {
                at_nanos: 0,
                layer: "meta".to_string(),
                kind: "truncated".to_string(),
                assoc: 0,
                adu: None,
                a: overwritten,
                b: 0,
                len: 0,
            });
        }
        parsed.extend(events.iter().map(ParsedEvent::from));
        SpanReport::from_parsed(&parsed)
    }

    /// Per-stage attribution over all non-truncated spans.
    pub fn stage_stats(&self) -> Vec<StageStat> {
        STAGES
            .iter()
            .map(|&stage| {
                let mut h = Histogram::default();
                for span in self.spans.iter().filter(|s| !s.truncated) {
                    if let Some(ns) = span.stage_nanos(stage) {
                        h.observe(ns / 1_000);
                    }
                }
                StageStat {
                    stage,
                    count: h.count(),
                    total_us: h.sum(),
                    mean_us: h.mean(),
                    p50_us: h.quantile_upper_bound(0.50),
                    p99_us: h.quantile_upper_bound(0.99),
                    max_us: h.max(),
                }
            })
            .collect()
    }

    /// HOL-stall summary over all non-truncated spans (see
    /// [`AduSpan::stall_nanos`]).
    pub fn stall_summary(&self) -> StallSummary {
        StallSummary::from_nanos(
            self.spans
                .iter()
                .filter(|s| !s.truncated)
                .filter_map(AduSpan::stall_nanos),
        )
    }

    /// Render the per-ADU timeline table (first `limit` spans), one row per
    /// ADU with per-stage durations. Truncated spans print `TRUNCATED`.
    pub fn render_timeline(&self, limit: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>4}",
            "adu",
            "submit",
            "admit_w",
            "pace_w",
            "flight",
            "transfer",
            "reasm",
            "stall",
            "total",
            "rpr",
        );
        let dur = |v: Option<u64>| v.map_or_else(|| "-".to_string(), fmt_nanos);
        for span in self.spans.iter().take(limit) {
            if span.truncated {
                let _ = writeln!(
                    out,
                    "{:<14} TRUNCATED (ring overwrote {} earlier events)",
                    span.adu, self.truncated_events
                );
                continue;
            }
            let _ = writeln!(
                out,
                "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>4}",
                span.adu,
                dur(span.submit_at),
                dur(span.stage_nanos("admit_wait")),
                dur(span.stage_nanos("pace_wait")),
                dur(span.stage_nanos("first_flight")),
                dur(span.stage_nanos("transfer")),
                dur(span.stage_nanos("reassemble")),
                dur(span.stall_nanos()),
                dur(span.total_nanos()),
                span.repair_events,
            );
        }
        if self.spans.len() > limit {
            let _ = writeln!(out, "… and {} more spans", self.spans.len() - limit);
        }
        if self.truncated_events > 0 {
            let _ = writeln!(
                out,
                "!!! TRUNCATED: ring overwrote {} earlier events",
                self.truncated_events
            );
        }
        out
    }

    /// Render the stage-attribution summary (p50/p99/mean per stage).
    pub fn render_attribution(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>10} {:>10} {:>10} {:>10}",
            "stage", "count", "p50<=us", "p99<=us", "mean_us", "max_us",
        );
        for s in self.stage_stats() {
            let _ = writeln!(
                out,
                "{:<14} {:>6} {:>10} {:>10} {:>10.1} {:>10}",
                s.stage, s.count, s.p50_us, s.p99_us, s.mean_us, s.max_us,
            );
        }
        let stall = self.stall_summary();
        let _ = writeln!(
            out,
            "hol_stall      count={} mean={:.1}us p99<={}us max={}us",
            stall.count, stall.mean_us, stall.p99_us, stall.max_us,
        );
        out
    }
}

/// One ADU-sized byte range's head-of-line accounting over a stream
/// transport: the range counts as *ready* when every byte has arrived at
/// the receiving endpoint (in order or buffered out-of-order) and as
/// *delivered* when in-order delivery passes its end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStall {
    /// Range index (byte range `[index*adu_bytes, (index+1)*adu_bytes)`).
    pub index: u64,
    /// All bytes of the range had arrived (ns).
    pub ready_at: u64,
    /// In-order delivery reached the end of the range (ns).
    pub delivered_at: u64,
}

impl StreamStall {
    /// The HOL stall: delivered − ready, nanoseconds.
    pub fn stall_nanos(&self) -> u64 {
        self.delivered_at.saturating_sub(self.ready_at)
    }
}

/// Compute per-ADU HOL stalls for a stream-substrate run from its
/// `seg_recv` (accepted segment: `a` = stream offset, `len` = bytes) and
/// `stream_adv` (`a` = new in-order delivery point) events. `adu_bytes` is
/// the fixed ADU framing over the byte stream. Only ranges that both
/// completed arrival and were delivered are returned. Events from multiple
/// layers are tolerated: the layer of the first `seg_recv` wins (the
/// receiving side of a unidirectional run).
pub fn stream_stalls(events: &[ParsedEvent], adu_bytes: u64) -> Vec<StreamStall> {
    assert!(adu_bytes > 0, "adu_bytes must be positive");
    let layer = match events.iter().find(|e| e.kind == "seg_recv") {
        Some(e) => e.layer.clone(),
        None => return Vec::new(),
    };
    // Disjoint covered intervals start → end, plus per-range covered-byte
    // counters (overlap-free by construction).
    let mut covered: BTreeMap<u64, u64> = BTreeMap::new();
    let mut range_bytes: BTreeMap<u64, u64> = BTreeMap::new();
    let mut ready: BTreeMap<u64, u64> = BTreeMap::new();
    let mut delivered: BTreeMap<u64, u64> = BTreeMap::new();
    let mut delivered_upto = 0u64;
    for e in events.iter().filter(|e| e.layer == layer) {
        match e.kind.as_str() {
            "seg_recv" => {
                let (mut s, seg_end) = (e.a, e.a + e.len);
                while s < seg_end {
                    // Skip parts already covered by an earlier arrival.
                    if let Some((_, &pe)) = covered.range(..=s).next_back() {
                        if pe > s {
                            s = pe;
                            continue;
                        }
                    }
                    let next_start = covered
                        .range(s + 1..)
                        .next()
                        .map_or(seg_end, |(&ns, _)| ns.min(seg_end));
                    if next_start <= s {
                        break;
                    }
                    // [s, next_start) is newly covered: credit each
                    // overlapped ADU range.
                    covered.insert(s, next_start);
                    let mut idx = s / adu_bytes;
                    while idx * adu_bytes < next_start {
                        let lo = s.max(idx * adu_bytes);
                        let hi = next_start.min((idx + 1) * adu_bytes);
                        let got = range_bytes.entry(idx).or_insert(0);
                        *got += hi - lo;
                        if *got >= adu_bytes {
                            ready.entry(idx).or_insert(e.at_nanos);
                        }
                        idx += 1;
                    }
                    s = next_start;
                }
                // Merge adjacent intervals to keep the map small.
                merge_intervals(&mut covered);
            }
            "stream_adv" => {
                let rcv_nxt = e.a;
                let mut idx = delivered_upto / adu_bytes;
                while (idx + 1) * adu_bytes <= rcv_nxt {
                    delivered.entry(idx).or_insert(e.at_nanos);
                    idx += 1;
                }
                delivered_upto = delivered_upto.max(rcv_nxt);
            }
            _ => {}
        }
    }
    ready
        .iter()
        .filter_map(|(&idx, &ready_at)| {
            delivered.get(&idx).map(|&delivered_at| StreamStall {
                index: idx,
                ready_at,
                delivered_at: delivered_at.max(ready_at),
            })
        })
        .collect()
}

/// Aggregate a [`stream_stalls`] result into a [`StallSummary`].
pub fn stream_stall_summary(stalls: &[StreamStall]) -> StallSummary {
    StallSummary::from_nanos(stalls.iter().map(StreamStall::stall_nanos))
}

fn merge_intervals(covered: &mut BTreeMap<u64, u64>) {
    let keys: Vec<u64> = covered.keys().copied().collect();
    for k in keys {
        let Some(&end) = covered.get(&k) else {
            continue;
        };
        if let Some(&next_end) = covered.get(&end) {
            covered.remove(&end);
            covered.insert(k, next_end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, layer: &str, kind: &str, adu: Option<&str>, a: u64, len: u64) -> ParsedEvent {
        ParsedEvent {
            at_nanos: at,
            layer: layer.to_string(),
            kind: kind.to_string(),
            assoc: 1,
            adu: adu.map(str::to_string),
            a,
            b: 0,
            len,
        }
    }

    fn full_lifecycle() -> Vec<ParsedEvent> {
        vec![
            ev(100, "app", "adu_submit", Some("seq:0"), 0, 4000),
            ev(200, "sender", "adu_send", Some("seq:0"), 0, 4000),
            ev(300, "sender", "tu_send", Some("seq:0"), 0, 1400),
            ev(400, "sender", "tu_send", Some("seq:0"), 0, 1400),
            ev(900, "receiver", "tu_recv", Some("seq:0"), 0, 1400),
            ev(1500, "receiver", "tu_recv", Some("seq:0"), 0, 1400),
            ev(1500, "receiver", "adu_deliver", Some("seq:0"), 0, 4000),
            ev(1600, "app", "adu_consume", Some("seq:0"), 0, 4000),
        ]
    }

    #[test]
    fn stitches_full_lifecycle() {
        let r = SpanReport::from_parsed(&full_lifecycle());
        assert_eq!(r.spans.len(), 1);
        let s = &r.spans[0];
        assert_eq!(s.adu, "seq:0");
        assert_eq!(s.submit_at, Some(100));
        assert_eq!(s.stage_nanos("admit_wait"), Some(100));
        assert_eq!(s.stage_nanos("pace_wait"), Some(100));
        assert_eq!(s.stage_nanos("first_flight"), Some(600));
        assert_eq!(s.stage_nanos("transfer"), Some(600));
        assert_eq!(s.stage_nanos("reassemble"), Some(0));
        assert_eq!(s.stage_nanos("deliver_wait"), Some(100));
        assert_eq!(s.stall_nanos(), Some(100));
        assert_eq!(s.total_nanos(), Some(1500));
        assert_eq!(s.tus_sent, 2);
        assert!(!s.truncated);
    }

    #[test]
    fn repair_events_counted_and_ids_resolve_names() {
        let mut events = full_lifecycle();
        events.push(ev(2000, "sender", "adu_retx", Some("seq:0"), 0, 4000));
        // A tu_retx without a name resolves through the (layer, id) map.
        events.push(ev(2100, "sender", "tu_retx", None, 0, 1400));
        let r = SpanReport::from_parsed(&events);
        assert_eq!(r.spans[0].repair_events, 2);
    }

    #[test]
    fn truncated_ring_marks_spans_explicitly() {
        let mut events = vec![ev(0, "meta", "truncated", None, 37, 0)];
        // Span with no submit event (overwritten): must be TRUNCATED.
        events.push(ev(900, "receiver", "tu_recv", Some("seq:9"), 9, 1400));
        events.push(ev(950, "receiver", "adu_deliver", Some("seq:9"), 9, 1400));
        let r = SpanReport::from_parsed(&events);
        assert_eq!(r.truncated_events, 37);
        assert!(r.spans[0].truncated);
        let timeline = r.render_timeline(10);
        assert!(timeline.contains("TRUNCATED"), "{timeline}");
        assert!(timeline.contains("37"), "{timeline}");
    }

    #[test]
    fn intact_ring_has_no_truncated_spans() {
        let r = SpanReport::from_parsed(&full_lifecycle());
        assert_eq!(r.truncated_events, 0);
        assert!(!r.render_timeline(10).contains("TRUNCATED"));
    }

    #[test]
    fn from_events_injects_overwrite_marker() {
        let r = SpanReport::from_events(&[], 5);
        assert_eq!(r.truncated_events, 5);
    }

    #[test]
    fn attribution_report_sums_stages() {
        let r = SpanReport::from_parsed(&full_lifecycle());
        let stats = r.stage_stats();
        assert_eq!(stats.len(), STAGES.len());
        let admit = &stats[0];
        assert_eq!(admit.stage, "admit_wait");
        assert_eq!(admit.count, 1);
        let text = r.render_attribution();
        assert!(text.contains("admit_wait"), "{text}");
        assert!(text.contains("hol_stall"), "{text}");
    }

    #[test]
    fn stream_stall_basic_hol() {
        // Two 1000-byte ADUs over a stream; ADU 1's bytes all arrive at
        // t=100 but deliver only at t=500 when the gap before them fills.
        let events = vec![
            ev(100, "receiver", "seg_recv", None, 1000, 1000),
            ev(500, "receiver", "seg_recv", None, 0, 1000),
            ev(500, "receiver", "stream_adv", None, 2000, 2000),
        ];
        let stalls = stream_stalls(&events, 1000);
        assert_eq!(stalls.len(), 2);
        let s0 = stalls.iter().find(|s| s.index == 0).unwrap();
        let s1 = stalls.iter().find(|s| s.index == 1).unwrap();
        assert_eq!(s0.stall_nanos(), 0);
        assert_eq!(s1.stall_nanos(), 400);
        let sum = stream_stall_summary(&stalls);
        assert_eq!(sum.count, 2);
        assert_eq!(sum.max_us, 0); // 400ns rounds below 1us
    }

    #[test]
    fn stream_stall_ignores_duplicate_coverage() {
        // The same segment retransmitted later must not double-credit
        // coverage or move ready_at.
        let events = vec![
            ev(100, "receiver", "seg_recv", None, 0, 500),
            ev(200, "receiver", "seg_recv", None, 500, 500),
            ev(900, "receiver", "seg_recv", None, 0, 500), // dup
            ev(950, "receiver", "stream_adv", None, 1000, 1000),
        ];
        let stalls = stream_stalls(&events, 1000);
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].ready_at, 200);
        assert_eq!(stalls[0].delivered_at, 950);
    }

    #[test]
    fn stream_stall_segment_spanning_ranges() {
        // One segment covering the boundary credits both ADU ranges.
        let events = vec![
            ev(100, "receiver", "seg_recv", None, 0, 1500),
            ev(200, "receiver", "seg_recv", None, 1500, 500),
            ev(200, "receiver", "stream_adv", None, 2000, 2000),
        ];
        let stalls = stream_stalls(&events, 1000);
        assert_eq!(stalls.len(), 2);
        assert_eq!(stalls[0].ready_at, 100);
        assert_eq!(stalls[1].ready_at, 200);
    }

    #[test]
    fn span_jsonl_round_trips() {
        let r = SpanReport::from_parsed(&full_lifecycle());
        let mut jsonl = String::new();
        for s in &r.spans {
            s.write_jsonl(&mut jsonl);
        }
        let parsed = AduSpan::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, r.spans);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// `Option<u64>` (the vendored stub has no `proptest::option`).
    fn arb_opt() -> impl Strategy<Value = Option<u64>> {
        prop_oneof![Just(None), any::<u64>().prop_map(Some)]
    }

    fn arb_span() -> impl Strategy<Value = AduSpan> {
        (
            ("[ -~]{0,12}", arb_opt(), arb_opt(), arb_opt()),
            (arb_opt(), arb_opt(), arb_opt(), arb_opt(), arb_opt()),
            (any::<u64>(), any::<u64>(), any::<bool>(), any::<bool>()),
        )
            .prop_map(
                |(
                    (adu, adu_id, submit_at, admit_at),
                    (first_send_at, last_send_at, first_arrival_at, last_arrival_at, complete_at),
                    (consume_at_raw, repair_events, lost, truncated),
                )| AduSpan {
                    adu,
                    adu_id,
                    submit_at,
                    admit_at,
                    first_send_at,
                    last_send_at,
                    first_arrival_at,
                    last_arrival_at,
                    complete_at,
                    consume_at: (consume_at_raw % 2 == 0).then_some(consume_at_raw),
                    repair_events,
                    tus_sent: repair_events / 3,
                    lost,
                    truncated,
                },
            )
    }

    proptest! {
        #[test]
        fn prop_span_jsonl_round_trip(
            spans in proptest::collection::vec(arb_span(), 0..8),
        ) {
            let mut jsonl = String::new();
            for s in &spans {
                s.write_jsonl(&mut jsonl);
            }
            let parsed = AduSpan::parse_jsonl(&jsonl).unwrap();
            prop_assert_eq!(parsed, spans);
        }
    }
}
