//! Rollup rendering for `ct-top`: the per-shard table, server-wide
//! rollup gauges, and batch-phase / tail attribution, derived from a
//! [`MetricsRegistry`] — live, or parsed back from a JSONL snapshot.
//!
//! One code path serves both: the `ct-top` binary feeds
//! [`MetricsRegistry::from_jsonl`] output through [`render_top`], and an
//! in-process caller renders the registry it holds. Because the JSONL
//! round trip is exact (counters, histograms, and finite gauges), the two
//! renderings are byte-identical — a dump is sufficient evidence, pinned
//! by `tests/observability.rs`.
//!
//! The shard table discovers groups structurally: any metric family
//! `base.shard<N>.leaf` whose shards carry the `wheel_pending` occupancy
//! gauge is a rollup group ([`AlfServer::publish_rollup`]'s shape — the
//! gauge requirement keeps the transport-stats families published by
//! `publish_stats` out of the table). Everything renders in `BTreeMap`
//! order: deterministic, like the rest of the crate.
//!
//! [`AlfServer::publish_rollup`]: ../../ct_server/struct.AlfServer.html

use crate::metrics::MetricsRegistry;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The per-shard leaves the table renders, in column order. Counters
/// except the last four; `slab_slots`/`slab_occupied` fold into one
/// `occ/slots` column.
const SHARD_COLUMNS: &[&str] = &[
    "assocs",
    "frames_in",
    "frames_out",
    "timer_fires",
    "polls",
    "misdelivered",
    "malformed",
    "stuck_assocs",
];

/// One discovered `base.shard<N>.*` family, keyed by shard index.
#[derive(Debug, Default)]
struct ShardGroup {
    /// shard index → (leaf → counter value)
    counters: BTreeMap<u64, BTreeMap<String, u64>>,
    /// shard index → (leaf → gauge value)
    gauges: BTreeMap<u64, BTreeMap<String, f64>>,
}

/// Split `name` at a `.shard<digits>.` segment into
/// `(base, shard index, leaf)`.
fn split_shard_name(name: &str) -> Option<(&str, u64, &str)> {
    let mut from = 0;
    while let Some(pos) = name[from..].find(".shard") {
        let start = from + pos;
        let rest = &name[start + ".shard".len()..];
        let digits: usize = rest.chars().take_while(char::is_ascii_digit).count();
        if digits > 0 && rest[digits..].starts_with('.') {
            let idx = rest[..digits].parse().ok()?;
            return Some((&name[..start], idx, &rest[digits + 1..]));
        }
        from = start + ".shard".len();
    }
    None
}

/// Collect every rollup-shaped shard family in the registry: a family
/// qualifies when at least one of its shards carries the `wheel_pending`
/// occupancy gauge.
fn shard_groups(reg: &MetricsRegistry) -> BTreeMap<String, ShardGroup> {
    let mut groups: BTreeMap<String, ShardGroup> = BTreeMap::new();
    for (name, v) in reg.counters() {
        if let Some((base, idx, leaf)) = split_shard_name(name) {
            groups
                .entry(base.to_string())
                .or_default()
                .counters
                .entry(idx)
                .or_default()
                .insert(leaf.to_string(), v);
        }
    }
    for (name, v) in reg.gauges() {
        if let Some((base, idx, leaf)) = split_shard_name(name) {
            groups
                .entry(base.to_string())
                .or_default()
                .gauges
                .entry(idx)
                .or_default()
                .insert(leaf.to_string(), v);
        }
    }
    groups.retain(|_, g| {
        g.gauges
            .values()
            .any(|leaves| leaves.contains_key("wheel_pending"))
    });
    groups
}

/// Render one rollup group: the per-shard table plus the base-level
/// totals row and gauges.
fn render_group(out: &mut String, reg: &MetricsRegistry, base: &str, group: &ShardGroup) {
    let _ = writeln!(out, "--- per-shard table ({base}) ---");
    let _ = write!(out, "{:<6}", "shard");
    for col in SHARD_COLUMNS {
        let _ = write!(out, "  {col:>12}");
    }
    let _ = writeln!(out, "  {:>6}  {:>6}  {:>12}", "wheel", "dirty", "slab");
    let shards: Vec<u64> = group
        .counters
        .keys()
        .chain(group.gauges.keys())
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for idx in shards {
        let c = group.counters.get(&idx);
        let g = group.gauges.get(&idx);
        let counter = |leaf: &str| c.and_then(|m| m.get(leaf)).copied().unwrap_or(0);
        let gauge = |leaf: &str| g.and_then(|m| m.get(leaf)).copied().unwrap_or(0.0);
        let _ = write!(out, "{idx:<6}");
        for col in SHARD_COLUMNS {
            let _ = write!(out, "  {:>12}", counter(col));
        }
        let _ = writeln!(
            out,
            "  {:>6}  {:>6}  {:>12}",
            gauge("wheel_pending") as u64,
            gauge("dirty_len") as u64,
            format!(
                "{}/{}",
                gauge("slab_occupied") as u64,
                gauge("slab_slots") as u64
            ),
        );
    }
    // Totals row from the base-level merged counters (publish_rollup
    // writes them alongside the shards).
    let _ = write!(out, "{:<6}", "total");
    for col in SHARD_COLUMNS {
        let _ = write!(out, "  {:>12}", reg.counter(&format!("{base}.{col}")));
    }
    let wheel = reg
        .gauge(&format!("{base}.wheel.pending_total"))
        .unwrap_or(0.0);
    let dirty = reg.gauge(&format!("{base}.dirty.total")).unwrap_or(0.0);
    let _ = writeln!(out, "  {:>6}  {:>6}", wheel as u64, dirty as u64);

    let _ = writeln!(out);
    let _ = writeln!(out, "--- rollup gauges ({base}) ---");
    for leaf in [
        "imbalance.assocs",
        "imbalance.frames_in",
        "slab.occupancy",
        "wheel.pending_total",
        "dirty.total",
        "batch.mean_frames",
    ] {
        if let Some(v) = reg.gauge(&format!("{base}.{leaf}")) {
            let _ = writeln!(out, "{leaf:<22}  {v:.3}");
        }
    }
    if let Some(batches) = non_zero(reg.counter(&format!("{base}.batches"))) {
        let _ = writeln!(out, "{:<22}  {batches}", "batches");
    }
}

fn non_zero(v: u64) -> Option<u64> {
    (v > 0).then_some(v)
}

/// True when [`render_top`] would attribute anything: a rollup shard
/// family, or batch-phase / tail histograms. The `--self-check` gate.
pub fn has_attribution(reg: &MetricsRegistry) -> bool {
    !shard_groups(reg).is_empty()
        || reg
            .histograms()
            .any(|(name, _)| name.contains(".phase.") || name.contains(".slowest_assoc"))
}

/// Render the full ct-top report from a registry: per-shard tables with
/// rollup gauges, batch-phase attribution (p50/p99/max/mean work units
/// per event-loop phase), and tail attribution (slowest-association work
/// and stuck-watchdog counts). Deterministic: `BTreeMap` order
/// throughout, no clocks, no host state.
pub fn render_top(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    let groups = shard_groups(reg);
    for (base, group) in &groups {
        render_group(&mut out, reg, base, group);
        let _ = writeln!(&mut out);
    }

    let phases: Vec<&str> = reg
        .histograms()
        .map(|(name, _)| name)
        .filter(|name| name.contains(".phase."))
        .collect();
    if !phases.is_empty() {
        let _ = writeln!(&mut out, "--- batch phase attribution (work units) ---");
        let width = phases.iter().map(|n| n.len()).max().unwrap_or(0);
        for name in phases {
            let h = reg.histogram(name).expect("listed histogram");
            let _ = writeln!(
                &mut out,
                "{name:<width$}  count={} p50<={} p99<={} max={} mean={:.1}",
                h.count(),
                h.quantile_upper_bound(0.50),
                h.quantile_upper_bound(0.99),
                h.max(),
                h.mean(),
            );
        }
        let _ = writeln!(&mut out);
    }

    let tails: Vec<&str> = reg
        .histograms()
        .map(|(name, _)| name)
        .filter(|name| name.contains(".slowest_assoc"))
        .collect();
    // Per-shard stuck counts already appear in the shard tables; only the
    // merged totals belong here.
    let stuck: Vec<(&str, u64)> = reg
        .counters()
        .filter(|(name, _)| name.ends_with(".stuck_assocs") && split_shard_name(name).is_none())
        .collect();
    if !tails.is_empty() || !stuck.is_empty() {
        let _ = writeln!(&mut out, "--- tail attribution ---");
        let width = tails
            .iter()
            .map(|n| n.len())
            .chain(stuck.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        for name in tails {
            let h = reg.histogram(name).expect("listed histogram");
            let _ = writeln!(
                &mut out,
                "{name:<width$}  count={} p50<={} p99<={} max={} mean={:.1}",
                h.count(),
                h.quantile_upper_bound(0.50),
                h.quantile_upper_bound(0.99),
                h.max(),
                h.mean(),
            );
        }
        for (name, v) in stuck {
            let _ = writeln!(&mut out, "{name:<width$}  {v}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rollup_fixture() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for (i, frames) in [(0u64, 100u64), (1, 140)] {
            let p = format!("srv.rollup.shard{i}");
            reg.counter_set(&format!("{p}.assocs"), 4);
            reg.counter_set(&format!("{p}.frames_in"), frames);
            reg.gauge_set(&format!("{p}.wheel_pending"), 2.0);
            reg.gauge_set(&format!("{p}.dirty_len"), 0.0);
            reg.gauge_set(&format!("{p}.slab_occupied"), 4.0);
            reg.gauge_set(&format!("{p}.slab_slots"), 4.0);
        }
        reg.counter_set("srv.rollup.assocs", 8);
        reg.counter_set("srv.rollup.frames_in", 240);
        reg.counter_set("srv.rollup.batches", 12);
        reg.gauge_set("srv.rollup.imbalance.frames_in", 140.0 / 120.0);
        reg.gauge_set("srv.rollup.wheel.pending_total", 4.0);
        for v in [3, 9, 200] {
            reg.observe("server.phase.dirty_polls", v);
            reg.observe("server.batch.slowest_assoc_work", v);
        }
        reg.counter_set("server.stuck_assocs", 1);
        reg
    }

    #[test]
    fn shard_name_splitting() {
        assert_eq!(
            split_shard_name("srv.rollup.shard3.frames_in"),
            Some(("srv.rollup", 3, "frames_in"))
        );
        assert_eq!(
            split_shard_name("a.shard10.wheel_pending"),
            Some(("a", 10, "wheel_pending"))
        );
        assert_eq!(split_shard_name("a.shardx.b"), None);
        assert_eq!(split_shard_name("a.shard3"), None);
        assert_eq!(split_shard_name("plain.counter"), None);
    }

    #[test]
    fn renders_table_gauges_and_attribution() {
        let reg = rollup_fixture();
        assert!(has_attribution(&reg));
        let out = render_top(&reg);
        assert!(out.contains("per-shard table (srv.rollup)"));
        assert!(out.contains("total"));
        assert!(out.contains("imbalance.frames_in"));
        assert!(out.contains("server.phase.dirty_polls"));
        assert!(out.contains("server.batch.slowest_assoc_work"));
        assert!(out.contains("server.stuck_assocs"));
        // Determinism: rendering twice is byte-identical.
        assert_eq!(out, render_top(&reg));
    }

    #[test]
    fn offline_render_matches_live_render() {
        let reg = rollup_fixture();
        let back = MetricsRegistry::from_jsonl(&reg.to_jsonl()).unwrap();
        assert_eq!(render_top(&reg), render_top(&back));
    }

    #[test]
    fn transport_stat_families_are_not_tables() {
        // publish_stats-shaped names (no wheel_pending gauge) must not
        // produce a table, and an empty registry attributes nothing.
        let mut reg = MetricsRegistry::new();
        reg.counter_set("server.shard0.adus_sent", 5);
        reg.counter_set("server.shard0.frames_in", 5);
        assert!(!has_attribution(&reg));
        assert_eq!(render_top(&reg), "");
    }
}
