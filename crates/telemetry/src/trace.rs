//! Structured event tracing: one [`Event`] type every layer reports into,
//! so net, transport, and pipeline activity land in a single ordered
//! flight-recorder ring.
//!
//! Events are sim-time-stamped (nanoseconds), keyed by association, layer,
//! and optionally an ADU name, and carry two free `u64` operands whose
//! meaning is per-`kind` (node ids for net events, ADU ids / sizes for
//! transport events). Layers and kinds are `&'static str` so emitting an
//! event allocates only when an ADU name is attached — and the recorder
//! wrapper skips even that when tracing is off.

use crate::json::{self, JsonError, JsonValue};
use std::fmt;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Simulated time in nanoseconds.
    pub at_nanos: u64,
    /// Which layer emitted it (`"net"`, `"sender"`, `"receiver"`, …).
    pub layer: &'static str,
    /// What happened (`"send"`, `"adu_deliver"`, `"tu_retx"`, …).
    pub kind: &'static str,
    /// Association id (0 when the layer has none, e.g. raw net frames).
    pub assoc: u32,
    /// Application-level ADU name, when the event concerns one.
    pub adu: Option<String>,
    /// First operand: node id, ADU id, … (per `kind`).
    pub a: u64,
    /// Second operand: node id, fragment offset, … (per `kind`).
    pub b: u64,
    /// Byte length the event concerns, when meaningful.
    pub len: u64,
}

/// Render nanoseconds compactly (`250ns`, `1.300us`, `4.520ms`, `1.002s`).
pub fn fmt_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12}  {:<8} {:<12} assoc={:<4} a={:<5} b={:<7} len={:<6}",
            fmt_nanos(self.at_nanos),
            self.layer,
            self.kind,
            self.assoc,
            self.a,
            self.b,
            self.len,
        )?;
        if let Some(adu) = &self.adu {
            write!(f, " adu={adu}")?;
        }
        Ok(())
    }
}

impl Event {
    /// Append this event to `out` as one JSONL line (newline included).
    pub fn write_jsonl(&self, out: &mut String) {
        out.push_str(&format!("{{\"at\":{},\"layer\":", self.at_nanos));
        json::write_escaped(out, self.layer);
        out.push_str(",\"kind\":");
        json::write_escaped(out, self.kind);
        out.push_str(&format!(",\"assoc\":{},\"adu\":", self.assoc));
        match &self.adu {
            Some(name) => json::write_escaped(out, name),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\"a\":{},\"b\":{},\"len\":{}}}\n",
            self.a, self.b, self.len
        ));
    }

    /// Parse a JSONL stream of events (one per line) back into
    /// [`ParsedEvent`]s — the semantic inverse of [`Event::write_jsonl`].
    ///
    /// # Errors
    /// [`JsonError`] on malformed lines or missing/ill-typed fields.
    pub fn parse_jsonl(input: &str) -> Result<Vec<ParsedEvent>, JsonError> {
        let mut events = Vec::new();
        for line in input.lines().filter(|l| !l.trim().is_empty()) {
            let v = json::parse(line)?;
            let bad = |message| JsonError { message, at: 0 };
            let num = |k| {
                v.get(k)
                    .and_then(JsonValue::as_u64)
                    .ok_or(bad("numeric field"))
            };
            let s = |k| {
                v.get(k)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or(bad("string field"))
            };
            let adu = match v.get("adu") {
                Some(JsonValue::Null) => None,
                Some(JsonValue::Str(name)) => Some(name.clone()),
                _ => return Err(bad("adu field")),
            };
            events.push(ParsedEvent {
                at_nanos: num("at")?,
                layer: s("layer")?,
                kind: s("kind")?,
                assoc: u32::try_from(num("assoc")?).map_err(|_| bad("assoc range"))?,
                adu,
                a: num("a")?,
                b: num("b")?,
                len: num("len")?,
            });
        }
        Ok(events)
    }
}

/// An [`Event`] as recovered from a JSONL export: identical fields, owned
/// strings (the static-str interning cannot survive parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedEvent {
    /// Simulated time in nanoseconds.
    pub at_nanos: u64,
    /// Emitting layer.
    pub layer: String,
    /// Event kind.
    pub kind: String,
    /// Association id.
    pub assoc: u32,
    /// ADU name, if any.
    pub adu: Option<String>,
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
    /// Byte length.
    pub len: u64,
}

impl From<&Event> for ParsedEvent {
    fn from(e: &Event) -> Self {
        ParsedEvent {
            at_nanos: e.at_nanos,
            layer: e.layer.to_string(),
            kind: e.kind.to_string(),
            assoc: e.assoc,
            adu: e.adu.clone(),
            a: e.a,
            b: e.b,
            len: e.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(adu: Option<&str>) -> Event {
        Event {
            at_nanos: 1_234_567,
            layer: "sender",
            kind: "adu_send",
            assoc: 7,
            adu: adu.map(str::to_string),
            a: 42,
            b: 0,
            len: 6144,
        }
    }

    #[test]
    fn display_names_assoc_and_adu() {
        let line = event(Some("seq:42")).to_string();
        assert!(line.contains("assoc=7"), "{line}");
        assert!(line.contains("adu=seq:42"), "{line}");
        assert!(line.contains("sender"), "{line}");
        assert!(line.contains("1.235ms"), "{line}");
        assert!(!event(None).to_string().contains("adu="));
    }

    #[test]
    fn jsonl_round_trips() {
        let events = vec![event(Some("file@8192")), event(None)];
        let mut jsonl = String::new();
        for e in &events {
            e.write_jsonl(&mut jsonl);
        }
        let parsed = Event::parse_jsonl(&jsonl).unwrap();
        let want: Vec<ParsedEvent> = events.iter().map(ParsedEvent::from).collect();
        assert_eq!(parsed, want);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Event::parse_jsonl("{\"at\":1}").is_err());
        assert!(Event::parse_jsonl("garbage").is_err());
    }

    #[test]
    fn nanos_formatting() {
        assert_eq!(fmt_nanos(250), "250ns");
        assert_eq!(fmt_nanos(1_300), "1.300us");
        assert_eq!(fmt_nanos(4_520_000), "4.520ms");
        assert_eq!(fmt_nanos(1_002_000_000), "1.002s");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const LAYERS: [&str; 3] = ["net", "sender", "receiver"];
    const KINDS: [&str; 4] = ["send", "adu_deliver", "tu_retx", "drop"];

    /// ADU names spanning the full sub-128 character range (quotes,
    /// backslashes, control characters) to exercise every escape path.
    fn arb_adu() -> impl Strategy<Value = Option<String>> {
        prop_oneof![
            Just(None),
            proptest::collection::vec(0u32..128u32, 0..16)
                .prop_map(|v| Some(v.into_iter().filter_map(char::from_u32).collect())),
        ]
    }

    proptest! {
        #[test]
        fn prop_event_jsonl_round_trip(
            fields in proptest::collection::vec(
                (
                    (any::<u64>(), 0usize..3, 0usize..4, any::<u32>(), arb_adu()),
                    (any::<u64>(), any::<u64>(), any::<u64>()),
                ),
                0..12,
            ),
        ) {
            let events: Vec<Event> = fields
                .into_iter()
                .map(|((at, l, k, assoc, adu), (a, b, len))| Event {
                    at_nanos: at,
                    layer: LAYERS[l],
                    kind: KINDS[k],
                    assoc,
                    adu,
                    a,
                    b,
                    len,
                })
                .collect();
            let mut jsonl = String::new();
            for e in &events {
                e.write_jsonl(&mut jsonl);
            }
            let parsed = Event::parse_jsonl(&jsonl).unwrap();
            let want: Vec<ParsedEvent> = events.iter().map(ParsedEvent::from).collect();
            prop_assert_eq!(parsed, want);
        }
    }
}
