//! A hand-rolled JSON subset: enough writer + parser for the workspace's
//! JSONL exports, with proper string escaping, and zero dependencies.
//!
//! The exports only ever emit objects whose values are strings, numbers,
//! `null`, or arrays thereof — so that is all the parser accepts. Numbers
//! are kept as their raw text so callers can parse them as `u64` exactly
//! (no detour through `f64`).

use std::fmt;

/// A parsed JSON value (workspace subset: no booleans, no nested objects
/// beyond one level of arrays — the exports never produce them).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// A number, kept as raw text for lossless integer round-trips.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a number that parses as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse error: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: &'static str,
    /// Byte offset into the input where parsing failed.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one complete JSON value from `input` (trailing whitespace allowed,
/// anything else after the value is an error).
///
/// # Errors
/// [`JsonError`] naming the offending byte offset.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            message: "trailing garbage after value",
            at: pos,
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(JsonError {
            message: "unexpected end of input",
            at: *pos,
        });
    };
    match b {
        b'n' => {
            if bytes[*pos..].starts_with(b"null") {
                *pos += 4;
                Ok(JsonValue::Null)
            } else {
                Err(JsonError {
                    message: "expected null",
                    at: *pos,
                })
            }
        }
        b'"' => parse_string(bytes, pos).map(JsonValue::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            message: "expected ',' or ']' in array",
                            at: *pos,
                        })
                    }
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError {
                        message: "expected ':' after object key",
                        at: *pos,
                    });
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => {
                        return Err(JsonError {
                            message: "expected ',' or '}' in object",
                            at: *pos,
                        })
                    }
                }
            }
        }
        b'-' | b'0'..=b'9' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let raw = std::str::from_utf8(&bytes[start..*pos]).expect("numeric ASCII");
            if raw.parse::<f64>().is_err() {
                return Err(JsonError {
                    message: "malformed number",
                    at: start,
                });
            }
            Ok(JsonValue::Num(raw.to_string()))
        }
        _ => Err(JsonError {
            message: "unexpected character",
            at: *pos,
        }),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError {
            message: "expected '\"'",
            at: *pos,
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(JsonError {
                message: "unterminated string",
                at: *pos,
            });
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(JsonError {
                        message: "unterminated escape",
                        at: *pos,
                    });
                };
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32);
                        let Some(c) = hex else {
                            return Err(JsonError {
                                message: "bad \\u escape",
                                at: *pos,
                            });
                        };
                        out.push(c);
                        *pos += 4;
                    }
                    _ => {
                        return Err(JsonError {
                            message: "unknown escape",
                            at: *pos,
                        })
                    }
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // boundaries are valid by construction).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    message: "invalid UTF-8",
                    at: *pos,
                })?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_str(s: &str) -> String {
        let mut enc = String::new();
        write_escaped(&mut enc, s);
        match parse(&enc).unwrap() {
            JsonValue::Str(out) => out,
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn escapes_round_trip() {
        for s in [
            "",
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\ntab\tcr\r",
            "control \u{1} \u{1f} bytes",
            "unicode: κρίσις ☃",
        ] {
            assert_eq!(roundtrip_str(s), s);
        }
    }

    #[test]
    fn parses_mixed_object() {
        let v = parse(r#"{"a": 12, "b": "x", "c": null, "d": [1, 2.5, -3]}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
        let d = v.get("d").unwrap().as_arr().unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d[1].as_f64(), Some(2.5));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1, 2] tail").is_err());
        assert!(parse("nul").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn u64_precision_preserved() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }
}
