//! `ct-telemetry`: stack-wide observability for the ALF/ILP workspace.
//!
//! One deterministic, sim-time-stamped, zero-dependency subsystem with
//! three legs (DESIGN.md §8):
//!
//! * a **metrics registry** ([`MetricsRegistry`]) — named counters, gauges,
//!   and log2-bucket histograms with snapshot/diff and text + JSONL export;
//! * **structured event tracing** — a bounded flight-recorder [`Ring`] of
//!   [`Event`]s keyed by association, ADU name, and layer, shared by the
//!   network simulator and both transports so one ordered record shows a
//!   frame drop next to the retransmission it provoked;
//! * a **data-touch ledger** ([`TouchLedger`]) — every manipulation stage
//!   reports byte-reads/byte-writes, yielding "memory passes per delivered
//!   byte", the paper's figure of merit, measured instead of inferred.
//!
//! The [`Telemetry`] handle bundles all three behind an `Rc`, so cloning it
//! into the simulator, both transport endpoints, and the driver shares one
//! sink. It is single-threaded by design, exactly like the simulator; all
//! mutation goes through interior mutability so instrumented code only
//! needs `&self`.
//!
//! Determinism: timestamps are simulated nanoseconds, map iteration is
//! `BTreeMap`-ordered, and nothing reads the host clock — identically
//! seeded runs emit byte-identical trace and metrics streams.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod json;
pub mod ledger;
pub mod metrics;
pub mod ring;
pub mod span;
pub mod trace;

pub use ledger::{StageTouch, TouchLedger};
pub use metrics::{Histogram, MetricsRegistry};
pub use ring::Ring;
pub use span::{AduSpan, SpanReport, StageStat, StallSummary, StreamStall};
pub use trace::{Event, ParsedEvent};

use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;

/// The shared telemetry state behind a [`Telemetry`] handle.
#[derive(Debug, Default)]
struct Inner {
    metrics: RefCell<MetricsRegistry>,
    recorder: RefCell<Option<Ring<Event>>>,
    ledger: TouchLedger,
}

/// A cloneable handle to one telemetry sink: metrics registry + flight
/// recorder + data-touch ledger.
///
/// Clones share state (`Rc`); drop-in for threading one sink through the
/// simulator, both transports, and the driver. The fast path keeps costs
/// honest: counters and ledger touches are a few arithmetic ops, and
/// tracing is a no-op (no allocation, no formatting) until
/// [`Telemetry::enable_tracing`] arms the ring.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Rc<Inner>,
}

impl Telemetry {
    /// A fresh sink with tracing disarmed (counters and ledger active).
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh sink with the flight recorder armed at `capacity` events.
    pub fn with_tracing(capacity: usize) -> Self {
        let t = Self::new();
        t.enable_tracing(capacity);
        t
    }

    /// Arm the flight recorder with a ring of `capacity` events,
    /// discarding any previously recorded events.
    pub fn enable_tracing(&self, capacity: usize) {
        *self.inner.recorder.borrow_mut() = Some(Ring::new(capacity));
    }

    /// Whether the flight recorder is armed. Instrumented code checks this
    /// before building an [`Event`] so disabled tracing costs one branch.
    pub fn tracing_enabled(&self) -> bool {
        self.inner.recorder.borrow().is_some()
    }

    /// Record an event (dropped silently when tracing is disarmed).
    pub fn record(&self, event: Event) {
        if let Some(ring) = self.inner.recorder.borrow_mut().as_mut() {
            ring.push(event);
        }
    }

    /// Mutable access to the metrics registry.
    pub fn metrics_mut(&self) -> RefMut<'_, MetricsRegistry> {
        self.inner.metrics.borrow_mut()
    }

    /// Read access to the metrics registry.
    pub fn metrics(&self) -> Ref<'_, MetricsRegistry> {
        self.inner.metrics.borrow()
    }

    /// The data-touch ledger.
    pub fn ledger(&self) -> &TouchLedger {
        &self.inner.ledger
    }

    /// Retained trace events (0 when tracing is disarmed).
    pub fn trace_len(&self) -> usize {
        self.inner.recorder.borrow().as_ref().map_or(0, Ring::len)
    }

    /// Events evicted from the ring by newer ones.
    pub fn trace_overwritten(&self) -> u64 {
        self.inner
            .recorder
            .borrow()
            .as_ref()
            .map_or(0, Ring::overwritten)
    }

    /// Text dump of the whole retained flight record, one event per line.
    pub fn trace_dump(&self) -> String {
        self.inner
            .recorder
            .borrow()
            .as_ref()
            .map_or_else(String::new, Ring::dump)
    }

    /// Text dump of the last `n` retained events (the failure-dump shape:
    /// recent history, newest last).
    pub fn trace_dump_last(&self, n: usize) -> String {
        self.inner
            .recorder
            .borrow()
            .as_ref()
            .map_or_else(String::new, |r| r.dump_last(n))
    }

    /// JSONL export of the retained flight record, one event per line.
    ///
    /// When the ring has wrapped, the first line is a synthetic
    /// `meta/truncated` event whose `a` operand carries the overwrite
    /// count, so offline span stitching ([`SpanReport::from_parsed`]) can
    /// mark incomplete timelines `TRUNCATED` instead of silently reporting
    /// partial spans.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        if let Some(ring) = self.inner.recorder.borrow().as_ref() {
            if ring.overwritten() > 0 {
                Event {
                    at_nanos: 0,
                    layer: "meta",
                    kind: "truncated",
                    assoc: 0,
                    adu: None,
                    a: ring.overwritten(),
                    b: 0,
                    len: 0,
                }
                .write_jsonl(&mut out);
            }
            for e in ring.iter() {
                e.write_jsonl(&mut out);
            }
        }
        out
    }

    /// Retained events as a vector (cloned), oldest first.
    pub fn trace_events(&self) -> Vec<Event> {
        self.inner
            .recorder
            .borrow()
            .as_ref()
            .map_or_else(Vec::new, |r| r.iter().cloned().collect())
    }

    /// Stitch the retained flight record into per-ADU lifecycle spans
    /// (empty when tracing is disarmed). Equivalent to analyzing the
    /// [`Telemetry::trace_jsonl`] export offline with `ct-trace`.
    pub fn span_report(&self) -> SpanReport {
        SpanReport::from_events(&self.trace_events(), self.trace_overwritten())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: &'static str) -> Event {
        Event {
            at_nanos: at,
            layer: "test",
            kind,
            assoc: 1,
            adu: None,
            a: 0,
            b: 0,
            len: 0,
        }
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::new();
        let t2 = t.clone();
        t.metrics_mut().counter_add("x", 1);
        t2.metrics_mut().counter_add("x", 1);
        assert_eq!(t.metrics().counter("x"), 2);
        t.ledger().touch("s", 10, 0);
        assert_eq!(t2.ledger().total_reads(), 10);
    }

    #[test]
    fn tracing_disarmed_drops_events() {
        let t = Telemetry::new();
        assert!(!t.tracing_enabled());
        t.record(ev(1, "a"));
        assert_eq!(t.trace_len(), 0);
        assert_eq!(t.trace_dump(), "");
        assert_eq!(t.trace_jsonl(), "");
    }

    #[test]
    fn tracing_armed_records_and_bounds() {
        let t = Telemetry::with_tracing(2);
        for i in 0..5 {
            t.record(ev(i, "a"));
        }
        assert_eq!(t.trace_len(), 2);
        assert_eq!(t.trace_overwritten(), 3);
        let events = t.trace_events();
        assert_eq!(events[0].at_nanos, 3);
        assert_eq!(t.trace_dump_last(1).lines().count(), 1);
    }

    #[test]
    fn wrapped_jsonl_starts_with_truncation_marker() {
        let t = Telemetry::with_tracing(2);
        for i in 0..5 {
            t.record(ev(i, "a"));
        }
        let parsed = Event::parse_jsonl(&t.trace_jsonl()).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].layer, "meta");
        assert_eq!(parsed[0].kind, "truncated");
        assert_eq!(parsed[0].a, 3);
        assert_eq!(SpanReport::from_parsed(&parsed).truncated_events, 3);
    }

    #[test]
    fn jsonl_matches_events() {
        let t = Telemetry::with_tracing(8);
        t.record(ev(1, "x"));
        t.record(ev(2, "y"));
        let parsed = Event::parse_jsonl(&t.trace_jsonl()).unwrap();
        let want: Vec<ParsedEvent> = t.trace_events().iter().map(ParsedEvent::from).collect();
        assert_eq!(parsed, want);
    }
}
