//! `ct-telemetry`: stack-wide observability for the ALF/ILP workspace.
//!
//! One deterministic, sim-time-stamped, zero-dependency subsystem with
//! three legs (DESIGN.md §8):
//!
//! * a **metrics registry** ([`MetricsRegistry`]) — named counters, gauges,
//!   and log2-bucket histograms with snapshot/diff and text + JSONL export;
//! * **structured event tracing** — a bounded flight-recorder [`Ring`] of
//!   [`Event`]s keyed by association, ADU name, and layer, shared by the
//!   network simulator and both transports so one ordered record shows a
//!   frame drop next to the retransmission it provoked;
//! * a **data-touch ledger** ([`TouchLedger`]) — every manipulation stage
//!   reports byte-reads/byte-writes, yielding "memory passes per delivered
//!   byte", the paper's figure of merit, measured instead of inferred.
//!
//! The [`Telemetry`] handle bundles all three behind an `Rc`, so cloning it
//! into the simulator, both transport endpoints, and the driver shares one
//! sink. It is single-threaded by design, exactly like the simulator; all
//! mutation goes through interior mutability so instrumented code only
//! needs `&self`.
//!
//! Determinism: timestamps are simulated nanoseconds, map iteration is
//! `BTreeMap`-ordered, and nothing reads the host clock — identically
//! seeded runs emit byte-identical trace and metrics streams.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod json;
pub mod ledger;
pub mod metrics;
pub mod ring;
pub mod span;
pub mod top;
pub mod trace;

pub use ledger::{StageTouch, TouchLedger};
pub use metrics::{Histogram, MetricsRegistry};
pub use ring::Ring;
pub use span::{AduSpan, SpanReport, StageStat, StallSummary, StreamStall};
pub use trace::{Event, ParsedEvent};

use std::cell::{Cell, Ref, RefCell, RefMut};
use std::fmt::{self, Write as _};
use std::rc::Rc;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic span-sampling state: a seed folded into an FNV-1a hash
/// of `(association id, ADU name)`, compared against a rate-derived
/// threshold. `Copy` so it lives in a `Cell` — the armed check never
/// borrows.
#[derive(Clone, Copy, Debug)]
struct SpanSampler {
    seed: u64,
    threshold: u64,
}

/// Streams `Display` output straight into an FNV-1a state, so hashing an
/// ADU name allocates nothing (the unsampled path must stay O(1) heap).
struct FnvWriter(u64);

impl FnvWriter {
    fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

impl fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.push_bytes(s.as_bytes());
        Ok(())
    }
}

/// The shared telemetry state behind a [`Telemetry`] handle.
#[derive(Debug, Default)]
struct Inner {
    metrics: RefCell<MetricsRegistry>,
    recorder: RefCell<Option<Ring<Event>>>,
    sampler: Cell<Option<SpanSampler>>,
    ledger: TouchLedger,
}

/// A cloneable handle to one telemetry sink: metrics registry + flight
/// recorder + data-touch ledger.
///
/// Clones share state (`Rc`); drop-in for threading one sink through the
/// simulator, both transports, and the driver. The fast path keeps costs
/// honest: counters and ledger touches are a few arithmetic ops, and
/// tracing is a no-op (no allocation, no formatting) until
/// [`Telemetry::enable_tracing`] arms the ring.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Rc<Inner>,
}

impl Telemetry {
    /// A fresh sink with tracing disarmed (counters and ledger active).
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh sink with the flight recorder armed at `capacity` events.
    pub fn with_tracing(capacity: usize) -> Self {
        let t = Self::new();
        t.enable_tracing(capacity);
        t
    }

    /// Arm the flight recorder with a ring of `capacity` events,
    /// discarding any previously recorded events.
    pub fn enable_tracing(&self, capacity: usize) {
        *self.inner.recorder.borrow_mut() = Some(Ring::new(capacity));
    }

    /// Whether the flight recorder is armed. Instrumented code checks this
    /// before building an [`Event`] so disabled tracing costs one branch.
    pub fn tracing_enabled(&self) -> bool {
        self.inner.recorder.borrow().is_some()
    }

    /// Record an event (dropped silently when tracing is disarmed).
    pub fn record(&self, event: Event) {
        if let Some(ring) = self.inner.recorder.borrow_mut().as_mut() {
            ring.push(event);
        }
    }

    /// Arm deterministic span sampling: a seeded FNV-1a hash of
    /// `(association id, ADU name)` against `rate` (clamped to `0.0..=1.0`)
    /// selects which ADUs emit named flight-recorder events. The decision
    /// is a pure function of `(seed, assoc, name)`, so one ADU's span is
    /// kept or dropped **whole** (every lifecycle edge agrees), and
    /// same-seed runs emit byte-identical traces. Unnamed events (ACKs,
    /// probes, net-layer frames) are never sampled away.
    pub fn enable_span_sampling(&self, seed: u64, rate: f64) {
        let rate = rate.clamp(0.0, 1.0);
        // 1.0 scales to 2^64, which saturates to u64::MAX — treated as
        // "sample everything" below, so the clamp endpoints are exact.
        let threshold = (rate * u64::MAX as f64) as u64;
        self.inner
            .sampler
            .set(Some(SpanSampler { seed, threshold }));
    }

    /// Disarm span sampling: every named event records again (subject to
    /// the tracing arm check).
    pub fn disable_span_sampling(&self) {
        self.inner.sampler.set(None);
    }

    /// Whether the span sampler is armed.
    pub fn span_sampling_enabled(&self) -> bool {
        self.inner.sampler.get().is_some()
    }

    /// The sampling decision for `(assoc, name)`: `true` when the sampler
    /// is disarmed or the seeded hash of the pair falls under the rate
    /// threshold. Allocation-free — the name's `Display` output streams
    /// straight into the hash state.
    pub fn span_sampled(&self, assoc: u32, name: &dyn fmt::Display) -> bool {
        let Some(s) = self.inner.sampler.get() else {
            return true;
        };
        if s.threshold == u64::MAX {
            return true;
        }
        if s.threshold == 0 {
            return false;
        }
        let mut h = FnvWriter(FNV_OFFSET);
        h.push_bytes(&s.seed.to_le_bytes());
        h.push_bytes(&assoc.to_le_bytes());
        let _ = write!(h, "{name}");
        h.0 < s.threshold
    }

    /// The sampling decision for `(assoc, key)`, where `key` is a stable
    /// 64-bit digest of the ADU name (e.g. `AduName::span_key`). Same
    /// contract as [`Self::span_sampled`] but hot-path cheap: no `fmt`
    /// machinery, just 20 bytes through FNV-1a. Layers tracing the same
    /// ADU must agree on which form they hash — the stack's ADU datapath
    /// uses this one everywhere, so spans stay whole.
    pub fn span_sampled_key(&self, assoc: u32, key: u64) -> bool {
        let Some(s) = self.inner.sampler.get() else {
            return true;
        };
        if s.threshold == u64::MAX {
            return true;
        }
        if s.threshold == 0 {
            return false;
        }
        let mut h = FnvWriter(FNV_OFFSET);
        h.push_bytes(&s.seed.to_le_bytes());
        h.push_bytes(&assoc.to_le_bytes());
        h.push_bytes(&key.to_le_bytes());
        h.0 < s.threshold
    }

    /// Mutable access to the metrics registry.
    pub fn metrics_mut(&self) -> RefMut<'_, MetricsRegistry> {
        self.inner.metrics.borrow_mut()
    }

    /// Read access to the metrics registry.
    pub fn metrics(&self) -> Ref<'_, MetricsRegistry> {
        self.inner.metrics.borrow()
    }

    /// The data-touch ledger.
    pub fn ledger(&self) -> &TouchLedger {
        &self.inner.ledger
    }

    /// Retained trace events (0 when tracing is disarmed).
    pub fn trace_len(&self) -> usize {
        self.inner.recorder.borrow().as_ref().map_or(0, Ring::len)
    }

    /// Events evicted from the ring by newer ones.
    pub fn trace_overwritten(&self) -> u64 {
        self.inner
            .recorder
            .borrow()
            .as_ref()
            .map_or(0, Ring::overwritten)
    }

    /// Text dump of the whole retained flight record, one event per line.
    pub fn trace_dump(&self) -> String {
        self.inner
            .recorder
            .borrow()
            .as_ref()
            .map_or_else(String::new, Ring::dump)
    }

    /// Text dump of the last `n` retained events (the failure-dump shape:
    /// recent history, newest last).
    pub fn trace_dump_last(&self, n: usize) -> String {
        self.inner
            .recorder
            .borrow()
            .as_ref()
            .map_or_else(String::new, |r| r.dump_last(n))
    }

    /// JSONL export of the retained flight record, one event per line.
    ///
    /// When the ring has wrapped, the first line is a synthetic
    /// `meta/truncated` event whose `a` operand carries the overwrite
    /// count, so offline span stitching ([`SpanReport::from_parsed`]) can
    /// mark incomplete timelines `TRUNCATED` instead of silently reporting
    /// partial spans.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        if let Some(ring) = self.inner.recorder.borrow().as_ref() {
            if ring.overwritten() > 0 {
                Event {
                    at_nanos: 0,
                    layer: "meta",
                    kind: "truncated",
                    assoc: 0,
                    adu: None,
                    a: ring.overwritten(),
                    b: 0,
                    len: 0,
                }
                .write_jsonl(&mut out);
            }
            for e in ring.iter() {
                e.write_jsonl(&mut out);
            }
        }
        out
    }

    /// Retained events as a vector (cloned), oldest first.
    pub fn trace_events(&self) -> Vec<Event> {
        self.inner
            .recorder
            .borrow()
            .as_ref()
            .map_or_else(Vec::new, |r| r.iter().cloned().collect())
    }

    /// Stitch the retained flight record into per-ADU lifecycle spans
    /// (empty when tracing is disarmed). Equivalent to analyzing the
    /// [`Telemetry::trace_jsonl`] export offline with `ct-trace`.
    pub fn span_report(&self) -> SpanReport {
        SpanReport::from_events(&self.trace_events(), self.trace_overwritten())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: &'static str) -> Event {
        Event {
            at_nanos: at,
            layer: "test",
            kind,
            assoc: 1,
            adu: None,
            a: 0,
            b: 0,
            len: 0,
        }
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::new();
        let t2 = t.clone();
        t.metrics_mut().counter_add("x", 1);
        t2.metrics_mut().counter_add("x", 1);
        assert_eq!(t.metrics().counter("x"), 2);
        t.ledger().touch("s", 10, 0);
        assert_eq!(t2.ledger().total_reads(), 10);
    }

    #[test]
    fn tracing_disarmed_drops_events() {
        let t = Telemetry::new();
        assert!(!t.tracing_enabled());
        t.record(ev(1, "a"));
        assert_eq!(t.trace_len(), 0);
        assert_eq!(t.trace_dump(), "");
        assert_eq!(t.trace_jsonl(), "");
    }

    #[test]
    fn tracing_armed_records_and_bounds() {
        let t = Telemetry::with_tracing(2);
        for i in 0..5 {
            t.record(ev(i, "a"));
        }
        assert_eq!(t.trace_len(), 2);
        assert_eq!(t.trace_overwritten(), 3);
        let events = t.trace_events();
        assert_eq!(events[0].at_nanos, 3);
        assert_eq!(t.trace_dump_last(1).lines().count(), 1);
    }

    #[test]
    fn wrapped_jsonl_starts_with_truncation_marker() {
        let t = Telemetry::with_tracing(2);
        for i in 0..5 {
            t.record(ev(i, "a"));
        }
        let parsed = Event::parse_jsonl(&t.trace_jsonl()).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].layer, "meta");
        assert_eq!(parsed[0].kind, "truncated");
        assert_eq!(parsed[0].a, 3);
        assert_eq!(SpanReport::from_parsed(&parsed).truncated_events, 3);
    }

    #[test]
    fn span_sampling_is_deterministic_and_rate_shaped() {
        let t = Telemetry::new();
        // Disarmed: everything passes.
        assert!(!t.span_sampling_enabled());
        assert!(t.span_sampled(7, &"file[0..4096)"));

        // Rate endpoints are exact.
        t.enable_span_sampling(42, 1.0);
        assert!(t.span_sampled(7, &"anything"));
        t.enable_span_sampling(42, 0.0);
        assert!(!t.span_sampled(7, &"anything"));

        // The decision is a pure function of (seed, assoc, name): two
        // handles with the same seed agree on every pair.
        t.enable_span_sampling(42, 0.25);
        let u = Telemetry::new();
        u.enable_span_sampling(42, 0.25);
        let mut kept = 0usize;
        for assoc in 0..64u32 {
            for i in 0..16u32 {
                let name = format!("rpc#{i}");
                let a = t.span_sampled(assoc, &name);
                assert_eq!(a, u.span_sampled(assoc, &name));
                kept += usize::from(a);
            }
        }
        // 1024 pairs at rate 0.25: expect ~256, accept a generous band.
        assert!(
            (100..=400).contains(&kept),
            "rate 0.25 kept {kept}/1024 spans"
        );

        // A different seed selects a different subset (with overwhelming
        // probability over 1024 pairs).
        let w = Telemetry::new();
        w.enable_span_sampling(43, 0.25);
        let differs = (0..64u32).any(|assoc| {
            (0..16u32).any(|i| {
                let name = format!("rpc#{i}");
                t.span_sampled(assoc, &name) != w.span_sampled(assoc, &name)
            })
        });
        assert!(differs, "seed must perturb the sampled subset");

        t.disable_span_sampling();
        assert!(t.span_sampled(7, &"anything"));
    }

    #[test]
    fn span_key_sampling_matches_display_contract() {
        let t = Telemetry::new();
        // Disarmed and rate endpoints behave exactly like the Display form.
        assert!(t.span_sampled_key(7, 0xABCD));
        t.enable_span_sampling(42, 1.0);
        assert!(t.span_sampled_key(7, 0xABCD));
        t.enable_span_sampling(42, 0.0);
        assert!(!t.span_sampled_key(7, 0xABCD));

        // Pure function of (seed, assoc, key): two same-seed handles agree
        // on every pair, and the rate shapes the kept fraction.
        t.enable_span_sampling(42, 0.25);
        let u = Telemetry::new();
        u.enable_span_sampling(42, 0.25);
        let mut kept = 0usize;
        for assoc in 0..64u32 {
            for key in 0..16u64 {
                let key = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let a = t.span_sampled_key(assoc, key);
                assert_eq!(a, u.span_sampled_key(assoc, key));
                kept += usize::from(a);
            }
        }
        assert!(
            (100..=400).contains(&kept),
            "rate 0.25 kept {kept}/1024 keyed spans"
        );
    }

    #[test]
    fn jsonl_matches_events() {
        let t = Telemetry::with_tracing(8);
        t.record(ev(1, "x"));
        t.record(ev(2, "y"));
        let parsed = Event::parse_jsonl(&t.trace_jsonl()).unwrap();
        let want: Vec<ParsedEvent> = t.trace_events().iter().map(ParsedEvent::from).collect();
        assert_eq!(parsed, want);
    }
}
