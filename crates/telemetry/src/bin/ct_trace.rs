//! `ct-trace`: offline analyzer for flight-recorder JSONL dumps.
//!
//! Ingests the event stream a [`ct_telemetry::Telemetry::trace_jsonl`]
//! export produced (from a file argument or stdin) and emits:
//!
//! * a per-ADU **timeline table** — one row per ADU lifecycle span, with
//!   per-stage durations (`TRUNCATED` rows where the ring wrapped);
//! * a **stage-attribution summary** — p50/p99/mean per pipeline stage;
//! * a **HOL-blocking report** — ALF stall (consume − last arrival) per
//!   span, and, when the dump contains stream-substrate `seg_recv` /
//!   `stream_adv` events, per-range stream stalls for the ADU framing
//!   given by `--adu-bytes`.
//!
//! Stitching is deterministic: the same dump always yields byte-identical
//! output, and the output matches what the in-process stitcher saw for
//! the run that produced the dump.
//!
//! ```text
//! ct-trace [--adu-bytes N] [--limit N] [--self-check] [FILE]
//! ```
//!
//! `--self-check` exits non-zero when the dump yields no attribution at
//! all (no spans and no stream stalls) — the CI guard that the exporter
//! and the analyzer still speak the same schema.

use ct_telemetry::span::{stream_stall_summary, stream_stalls, SpanReport};
use ct_telemetry::Event;
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: ct-trace [--adu-bytes N] [--limit N] [--self-check] [FILE]");
    eprintln!("  FILE: flight-recorder JSONL export (stdin when omitted)");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut adu_bytes: u64 = 0;
    let mut limit: usize = 40;
    let mut self_check = false;
    let mut file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--adu-bytes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => adu_bytes = v,
                None => return usage(),
            },
            "--limit" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => limit = v,
                None => return usage(),
            },
            "--self-check" => self_check = true,
            "--help" | "-h" => return usage(),
            _ if arg.starts_with('-') => return usage(),
            _ if file.is_none() => file = Some(arg),
            _ => return usage(),
        }
    }

    let input = match &file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ct-trace: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("ct-trace: cannot read stdin: {e}");
                return ExitCode::from(2);
            }
            s
        }
    };

    let events = match Event::parse_jsonl(&input) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("ct-trace: malformed JSONL: {e}");
            return ExitCode::from(2);
        }
    };

    let report = SpanReport::from_parsed(&events);
    let mut attributed = false;

    println!("=== ct-trace: {} events ===", events.len());
    if !report.spans.is_empty() {
        attributed = true;
        println!();
        println!("--- ADU timeline ({} spans) ---", report.spans.len());
        print!("{}", report.render_timeline(limit));
        println!();
        println!("--- stage attribution ---");
        print!("{}", report.render_attribution());
    }

    let stalls = if adu_bytes > 0 {
        stream_stalls(&events, adu_bytes)
    } else {
        Vec::new()
    };
    if !stalls.is_empty() {
        attributed = true;
        let s = stream_stall_summary(&stalls);
        println!();
        println!("--- stream HOL report ({}-byte ADU framing) ---", adu_bytes);
        println!(
            "ranges={} stalled_ranges={} mean={:.1}us p99<={}us max={}us",
            stalls.len(),
            stalls.iter().filter(|st| st.stall_nanos() > 0).count(),
            s.mean_us,
            s.p99_us,
            s.max_us,
        );
    } else if adu_bytes > 0 {
        println!();
        println!("--- stream HOL report: no seg_recv/stream_adv events ---");
    }

    if report.truncated_events > 0 {
        println!();
        println!(
            "!!! TRUNCATED: the ring overwrote {} events before this export",
            report.truncated_events
        );
    }

    if self_check && !attributed {
        eprintln!("ct-trace: self-check FAILED — no spans and no stream stalls attributed");
        return ExitCode::FAILURE;
    }
    if self_check {
        println!();
        println!(
            "self-check OK: {} spans, {} stream ranges",
            report.spans.len(),
            stalls.len()
        );
    }
    ExitCode::SUCCESS
}
