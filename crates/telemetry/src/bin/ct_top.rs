//! `ct-top`: offline renderer for server observability-plane snapshots.
//!
//! Ingests a metrics JSONL export ([`MetricsRegistry::to_jsonl`] — from a
//! file argument or stdin) and renders, via [`ct_telemetry::top`]:
//!
//! * the **per-shard rollup table** — dispatch counters and occupancy
//!   gauges for every `base.shard<N>.*` family published by
//!   `AlfServer::publish_rollup`, with the merged totals row;
//! * the **rollup gauges** — shard imbalance (max/mean), slab occupancy,
//!   timer-wheel and dirty-list totals, mean batch size;
//! * **batch phase attribution** — p50/p99/max work units per event-loop
//!   phase (ingest / timers / dirty-poll / flush) from the log2
//!   histograms;
//! * **tail attribution** — the slowest-association-per-batch histogram
//!   and stuck-watchdog counts.
//!
//! Rendering is the same code path an in-process caller uses on its live
//! registry, and the JSONL round trip is exact — so the offline report is
//! byte-identical to the live one (pinned by `tests/observability.rs`).
//!
//! ```text
//! ct-top [--self-check] [FILE]
//! ```
//!
//! `--self-check` exits non-zero when the snapshot yields no shard table
//! and no attribution histograms — the CI guard that the publisher and
//! this renderer still speak the same schema.

use ct_telemetry::top::{has_attribution, render_top};
use ct_telemetry::MetricsRegistry;
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: ct-top [--self-check] [FILE]");
    eprintln!("  FILE: metrics JSONL export (stdin when omitted)");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut self_check = false;
    let mut file: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--self-check" => self_check = true,
            "--help" | "-h" => return usage(),
            _ if arg.starts_with('-') => return usage(),
            _ if file.is_none() => file = Some(arg),
            _ => return usage(),
        }
    }

    let input = match &file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ct-top: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("ct-top: cannot read stdin: {e}");
                return ExitCode::from(2);
            }
            s
        }
    };

    let reg = match MetricsRegistry::from_jsonl(&input) {
        Ok(reg) => reg,
        Err(e) => {
            eprintln!("ct-top: malformed metrics JSONL: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", render_top(&reg));

    if self_check && !has_attribution(&reg) {
        eprintln!("ct-top: self-check FAILED — no shard rollups and no attribution histograms");
        return ExitCode::FAILURE;
    }
    if self_check {
        println!();
        println!("self-check OK");
    }
    ExitCode::SUCCESS
}
