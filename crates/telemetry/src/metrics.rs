//! The metrics registry: named counters, gauges, and log2-bucket
//! histograms, with snapshot/diff and deterministic text + JSONL export.
//!
//! Everything is keyed by `String` in `BTreeMap`s so every rendering —
//! text, JSONL, diff — iterates in one deterministic order regardless of
//! insertion history. That is what makes "identically-seeded runs emit
//! byte-identical telemetry" a property rather than an accident.

use crate::json::{self, JsonError, JsonValue};
use std::collections::BTreeMap;

/// Number of histogram buckets: one for zero plus one per power of two.
const BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples.
///
/// Bucket 0 holds zeros; bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// The bucket index for a value: 0 for 0, else `floor(log2 v) + 1`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`): the exclusive
    /// upper edge of the first bucket whose cumulative count reaches
    /// `q * count`. Returns 0 when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let target = target.max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                // Bucket i covers [2^(i-1), 2^i); its upper edge is 2^i.
                return if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    1u64 << i
                };
            }
        }
        self.max
    }

    /// The non-empty buckets as `(index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Fold `other` into this histogram: counts, sums, and buckets add
    /// (saturating); `min`/`max` take the extremes across both. Merging is
    /// associative and commutative, so per-shard histograms roll up into
    /// one server-wide view in any order with the same result.
    pub fn merge(&mut self, other: &Histogram) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
    }

    /// This histogram minus an `earlier` snapshot of it: counts, sums, and
    /// buckets subtract; `min`/`max` are kept from `self` (extrema cannot
    /// be un-observed).
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        Histogram {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets,
        }
    }
}

/// A registry of named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter (creating it at zero first).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        // get_mut-then-insert keeps the common (existing-key) path
        // allocation-free; `entry` would build a String every call.
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Set a counter to an absolute value (for publishing an externally
    /// maintained stat block at end of run).
    pub fn counter_set(&mut self, name: &str, value: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v = value;
        } else {
            self.counters.insert(name.to_string(), value);
        }
    }

    /// Current counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record a histogram sample (creating the histogram on first use).
    pub fn observe(&mut self, name: &str, v: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::default();
            h.observe(v);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// A histogram by name, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// All counters as `(name, value)` pairs, in deterministic name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges as `(name, value)` pairs, in deterministic name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms as `(name, histogram)` pairs, in deterministic
    /// name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Fold `other` into this registry: counters add, histograms
    /// [`Histogram::merge`], and gauges take the **maximum** — the
    /// rollup convention for worst-observed values (peak occupancy,
    /// latency ceilings), matching `AlfStats::merge`. Merging is
    /// associative and commutative, so per-shard registries roll up
    /// into one server-wide snapshot in any order.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &v) in &other.counters {
            self.counter_add(name, v);
        }
        for (name, &v) in &other.gauges {
            match self.gauges.get_mut(name) {
                Some(g) => *g = g.max(v),
                None => {
                    self.gauges.insert(name.clone(), v);
                }
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// A point-in-time copy, for later [`MetricsRegistry::diff`].
    pub fn snapshot(&self) -> MetricsRegistry {
        self.clone()
    }

    /// This registry minus an `earlier` snapshot: counters and histograms
    /// subtract (saturating; keys present only in `self` pass through);
    /// gauges keep their latest value.
    pub fn diff(&self, earlier: &MetricsRegistry) -> MetricsRegistry {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let d = match earlier.histograms.get(k) {
                    Some(e) => h.diff(e),
                    None => h.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        MetricsRegistry {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Render as aligned text, one metric per line, deterministic order.
    pub fn render_text(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter  {name:<width$}  {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge    {name:<width$}  {v:.3}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "hist     {name:<width$}  count={} sum={} min={} max={} mean={:.1} p50<={} p99<={}\n",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean(),
                h.quantile_upper_bound(0.50),
                h.quantile_upper_bound(0.99),
            ));
        }
        out
    }

    /// Export as JSONL: one metric per line, deterministic order.
    ///
    /// Non-finite gauge values export as `null` (and parse back as absent).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            json::write_escaped(&mut out, name);
            out.push_str(&format!(",\"value\":{v}}}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            json::write_escaped(&mut out, name);
            if v.is_finite() {
                out.push_str(&format!(",\"value\":{v:?}}}\n"));
            } else {
                out.push_str(",\"value\":null}\n");
            }
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"hist\",\"name\":");
            json::write_escaped(&mut out, name);
            out.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.count, h.sum, h.min, h.max
            ));
            for (i, (idx, c)) in h.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{idx},{c}]"));
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Parse a JSONL export back into a registry (semantic inverse of
    /// [`MetricsRegistry::to_jsonl`] for finite gauges).
    ///
    /// # Errors
    /// [`JsonError`] on malformed lines or missing/ill-typed fields.
    pub fn from_jsonl(input: &str) -> Result<MetricsRegistry, JsonError> {
        let mut reg = MetricsRegistry::new();
        for line in input.lines().filter(|l| !l.trim().is_empty()) {
            let v = json::parse(line)?;
            let bad = |message| JsonError { message, at: 0 };
            let kind = v
                .get("type")
                .and_then(JsonValue::as_str)
                .ok_or(bad("missing type"))?;
            let name = v
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or(bad("missing name"))?
                .to_string();
            match kind {
                "counter" => {
                    let value = v
                        .get("value")
                        .and_then(JsonValue::as_u64)
                        .ok_or(bad("counter value"))?;
                    reg.counter_set(&name, value);
                }
                "gauge" => match v.get("value") {
                    Some(JsonValue::Null) | None => {}
                    Some(val) => {
                        reg.gauge_set(&name, val.as_f64().ok_or(bad("gauge value"))?);
                    }
                },
                "hist" => {
                    let field = |k| {
                        v.get(k)
                            .and_then(JsonValue::as_u64)
                            .ok_or(bad("hist field"))
                    };
                    let mut h = Histogram {
                        count: field("count")?,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        buckets: [0; BUCKETS],
                    };
                    let buckets = v
                        .get("buckets")
                        .and_then(JsonValue::as_arr)
                        .ok_or(bad("hist buckets"))?;
                    for pair in buckets {
                        let pair = pair.as_arr().ok_or(bad("hist bucket pair"))?;
                        let idx = pair
                            .first()
                            .and_then(JsonValue::as_u64)
                            .ok_or(bad("bucket index"))? as usize;
                        let c = pair
                            .get(1)
                            .and_then(JsonValue::as_u64)
                            .ok_or(bad("bucket count"))?;
                        if idx >= BUCKETS {
                            return Err(bad("bucket index out of range"));
                        }
                        h.buckets[idx] = c;
                    }
                    reg.histograms.insert(name, h);
                }
                _ => return Err(bad("unknown metric type")),
            }
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_placement() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-9);
        assert_eq!(h.quantile_upper_bound(0.5), 4); // 3rd of 5 samples is in [2,4)
        assert_eq!(h.quantile_upper_bound(1.0), 128);
        assert_eq!(Histogram::default().min(), 0);
        assert_eq!(Histogram::default().quantile_upper_bound(0.99), 0);
    }

    #[test]
    fn counters_gauges_basics() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.counter_set("b", 7);
        r.gauge_set("g", 1.5);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("b"), 7);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("g"), Some(1.5));
        assert_eq!(r.gauge("absent"), None);
    }

    #[test]
    fn snapshot_diff_subtracts() {
        let mut r = MetricsRegistry::new();
        r.counter_add("c", 10);
        r.observe("h", 8);
        let snap = r.snapshot();
        r.counter_add("c", 5);
        r.observe("h", 8);
        r.observe("h", 2);
        r.gauge_set("g", 3.0);
        let d = r.diff(&snap);
        assert_eq!(d.counter("c"), 5);
        assert_eq!(d.histogram("h").unwrap().count(), 2);
        assert_eq!(d.histogram("h").unwrap().sum(), 10);
        assert_eq!(d.gauge("g"), Some(3.0));
    }

    #[test]
    fn histogram_merge_adds_counts_and_takes_extremes() {
        let mut a = Histogram::default();
        for v in [1, 4, 100] {
            a.observe(v);
        }
        let mut b = Histogram::default();
        for v in [0, 2, 2000] {
            b.observe(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 6);
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.min(), 0);
        assert_eq!(merged.max(), 2000);
        // Commutative: b.merge(a) gives the identical histogram.
        let mut other = b.clone();
        other.merge(&a);
        assert_eq!(merged, other);
        // Merging an empty histogram is the identity.
        let mut id = a.clone();
        id.merge(&Histogram::default());
        assert_eq!(id, a);
    }

    #[test]
    fn registry_merge_rolls_up_shards() {
        let mut shard0 = MetricsRegistry::new();
        shard0.counter_add("frames_in", 10);
        shard0.gauge_set("wheel_pending", 3.0);
        shard0.observe("batch_frames", 8);
        let mut shard1 = MetricsRegistry::new();
        shard1.counter_add("frames_in", 32);
        shard1.counter_add("timer_fires", 4);
        shard1.gauge_set("wheel_pending", 7.0);
        shard1.observe("batch_frames", 2);

        let mut total = MetricsRegistry::new();
        total.merge(&shard0);
        total.merge(&shard1);
        assert_eq!(total.counter("frames_in"), 42);
        assert_eq!(total.counter("timer_fires"), 4);
        // Gauges take the max (worst-observed), not the sum.
        assert_eq!(total.gauge("wheel_pending"), Some(7.0));
        let h = total.histogram("batch_frames").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 10);

        // Any merge order produces the same snapshot.
        let mut reversed = MetricsRegistry::new();
        reversed.merge(&shard1);
        reversed.merge(&shard0);
        assert_eq!(total, reversed);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut r = MetricsRegistry::new();
        r.counter_add("z", 1);
        r.counter_add("a", 2);
        r.gauge_set("g", 0.5);
        r.observe("h", 3);
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "z"]);
        assert_eq!(r.gauges().count(), 1);
        assert_eq!(r.histograms().count(), 1);
    }

    #[test]
    fn text_render_is_deterministic_and_ordered() {
        let mut r = MetricsRegistry::new();
        r.counter_add("zz", 1);
        r.counter_add("aa", 2);
        r.gauge_set("mid", 0.25);
        r.observe("lat", 1000);
        let t1 = r.render_text();
        let t2 = r.clone().render_text();
        assert_eq!(t1, t2);
        let aa = t1.find("aa").unwrap();
        let zz = t1.find("zz").unwrap();
        assert!(aa < zz, "BTreeMap order: aa before zz");
        assert!(t1.contains("hist"));
        assert!(t1.contains("p99<="));
    }

    #[test]
    fn jsonl_round_trips() {
        let mut r = MetricsRegistry::new();
        r.counter_add("frames \"quoted\"", 42);
        r.counter_set("big", u64::MAX);
        r.gauge_set("rate\nline", 0.1);
        for v in [0, 1, 5, 5, 1 << 40] {
            r.observe("lat", v);
        }
        let jsonl = r.to_jsonl();
        let back = MetricsRegistry::from_jsonl(&jsonl).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn jsonl_rejects_malformed() {
        assert!(MetricsRegistry::from_jsonl("{\"type\":\"counter\"}").is_err());
        assert!(MetricsRegistry::from_jsonl("not json").is_err());
        assert!(
            MetricsRegistry::from_jsonl("{\"type\":\"what\",\"name\":\"x\",\"value\":1}").is_err()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Names drawing from the full ASCII range below 128 — including
    /// quotes, backslashes, and control characters — so the round-trip
    /// exercises every escaping path.
    fn arb_name() -> impl Strategy<Value = String> {
        proptest::collection::vec(0u32..128u32, 1..24)
            .prop_map(|v| v.into_iter().filter_map(char::from_u32).collect())
    }

    proptest! {
        #[test]
        fn prop_jsonl_round_trip(
            counters in proptest::collection::vec((arb_name(), any::<u64>()), 0..6),
            gauges in proptest::collection::vec((arb_name(), any::<u32>()), 0..4),
            samples in proptest::collection::vec((arb_name(), proptest::collection::vec(any::<u64>(), 1..8)), 0..4),
        ) {
            let mut reg = MetricsRegistry::new();
            for (name, v) in &counters {
                reg.counter_set(name, *v);
            }
            for (name, v) in &gauges {
                // u32 → f64 keeps gauges finite and exactly representable.
                reg.gauge_set(name, f64::from(*v) / 16.0);
            }
            for (name, vs) in &samples {
                for v in vs {
                    reg.observe(name, *v);
                }
            }
            let back = MetricsRegistry::from_jsonl(&reg.to_jsonl()).unwrap();
            prop_assert_eq!(back, reg);
        }
    }
}
