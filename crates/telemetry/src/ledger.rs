//! The data-touch ledger: per-stage byte-read / byte-write accounting.
//!
//! The paper's central quantitative claim is that data-manipulation passes
//! dominate protocol cost, and that ILP wins by eliminating memory passes
//! per delivered byte. The ledger makes that a *measured* figure instead of
//! one inferred from Mb/s: every manipulation stage (wire kernels, codecs,
//! ciphers, pipeline executions, transport copies) reports how many bytes
//! it read and wrote, and [`TouchLedger::passes_per_delivered_byte`]
//! divides the total by the bytes the application actually received.
//!
//! The ledger uses interior mutability (`Cell`/`RefCell`) so a shared
//! telemetry handle can be threaded through call chains that only hold
//! `&self`. It is single-threaded by design, like the simulator.

use std::cell::{Cell, RefCell};

/// Accumulated touches for one named stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTouch {
    /// Stage name, e.g. `"wire/checksum"` or `"pipeline/integrated"`.
    pub stage: &'static str,
    /// Bytes read by this stage so far.
    pub reads: u64,
    /// Bytes written by this stage so far.
    pub writes: u64,
    /// Number of times the stage reported.
    pub calls: u64,
}

/// The per-byte data-touch ledger.
///
/// Stage names are `&'static str` and the stage list stays tiny (one entry
/// per distinct manipulation stage), so a `touch` is a short linear scan —
/// no hashing, no allocation — cheap enough to leave on in benchmarks.
#[derive(Debug, Default)]
pub struct TouchLedger {
    stages: RefCell<Vec<StageTouch>>,
    delivered: Cell<u64>,
}

impl TouchLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Report that `stage` read `reads` bytes and wrote `writes` bytes.
    pub fn touch(&self, stage: &'static str, reads: u64, writes: u64) {
        let mut stages = self.stages.borrow_mut();
        for s in stages.iter_mut() {
            if s.stage == stage {
                s.reads += reads;
                s.writes += writes;
                s.calls += 1;
                return;
            }
        }
        stages.push(StageTouch {
            stage,
            reads,
            writes,
            calls: 1,
        });
    }

    /// Report `bytes` of application data delivered (the denominator).
    pub fn deliver(&self, bytes: u64) {
        self.delivered.set(self.delivered.get() + bytes);
    }

    /// Application bytes delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// Total bytes read across all stages.
    pub fn total_reads(&self) -> u64 {
        self.stages.borrow().iter().map(|s| s.reads).sum()
    }

    /// Total bytes written across all stages.
    pub fn total_writes(&self) -> u64 {
        self.stages.borrow().iter().map(|s| s.writes).sum()
    }

    /// Total memory touches: reads + writes.
    pub fn total_touched(&self) -> u64 {
        self.total_reads() + self.total_writes()
    }

    /// Memory passes per delivered byte — the paper's figure of merit.
    /// Zero when nothing was delivered.
    pub fn passes_per_delivered_byte(&self) -> f64 {
        let delivered = self.delivered.get();
        if delivered == 0 {
            0.0
        } else {
            self.total_touched() as f64 / delivered as f64
        }
    }

    /// Snapshot of the per-stage accounts, in first-report order.
    pub fn stages(&self) -> Vec<StageTouch> {
        self.stages.borrow().clone()
    }

    /// Forget everything (stages and the delivered count).
    pub fn reset(&self) {
        self.stages.borrow_mut().clear();
        self.delivered.set(0);
    }

    /// Render the per-stage accounts as an aligned text table.
    pub fn render(&self) -> String {
        let stages = self.stages.borrow();
        let width = stages
            .iter()
            .map(|s| s.stage.len())
            .max()
            .unwrap_or(5)
            .max(5);
        let mut out = format!(
            "{:<width$}  {:>12}  {:>12}  {:>8}\n",
            "stage", "bytes read", "bytes written", "calls"
        );
        for s in stages.iter() {
            out.push_str(&format!(
                "{:<width$}  {:>12}  {:>12}  {:>8}\n",
                s.stage, s.reads, s.writes, s.calls
            ));
        }
        out.push_str(&format!(
            "delivered {} B; {:.3} memory passes per delivered byte\n",
            self.delivered.get(),
            self.passes_per_delivered_byte()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_stage() {
        let l = TouchLedger::new();
        l.touch("wire/copy", 100, 100);
        l.touch("wire/copy", 50, 50);
        l.touch("wire/checksum", 150, 0);
        let stages = l.stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].stage, "wire/copy");
        assert_eq!(stages[0].reads, 150);
        assert_eq!(stages[0].writes, 150);
        assert_eq!(stages[0].calls, 2);
        assert_eq!(l.total_reads(), 300);
        assert_eq!(l.total_writes(), 150);
        assert_eq!(l.total_touched(), 450);
    }

    #[test]
    fn passes_per_byte() {
        let l = TouchLedger::new();
        assert_eq!(l.passes_per_delivered_byte(), 0.0);
        l.touch("a", 200, 100);
        l.deliver(100);
        assert!((l.passes_per_delivered_byte() - 3.0).abs() < 1e-12);
        l.deliver(50);
        assert!((l.passes_per_delivered_byte() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears() {
        let l = TouchLedger::new();
        l.touch("a", 1, 1);
        l.deliver(1);
        l.reset();
        assert_eq!(l.total_touched(), 0);
        assert_eq!(l.delivered(), 0);
        assert!(l.stages().is_empty());
    }

    #[test]
    fn render_names_stages() {
        let l = TouchLedger::new();
        l.touch("pipeline/integrated", 64, 64);
        l.deliver(64);
        let r = l.render();
        assert!(r.contains("pipeline/integrated"));
        assert!(r.contains("2.000 memory passes"));
    }
}
