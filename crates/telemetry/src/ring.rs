//! The bounded ring buffer behind every flight recorder in the workspace.
//!
//! [`Ring`] retains the most recent `capacity` items and counts what it
//! evicted, so a dump can say "…and 1234 earlier events were overwritten"
//! instead of silently truncating history. `ct-netsim`'s `FrameTrace` and
//! the unified [`crate::trace`] recorder are both thin wrappers over it.

use std::collections::VecDeque;
use std::fmt;

/// A bounded ring retaining the most recent `capacity` items, oldest first.
///
/// Capacity zero is a valid always-empty ring (tracing disabled but the
/// type still present).
#[derive(Debug, Clone)]
pub struct Ring<T> {
    items: VecDeque<T>,
    capacity: usize,
    overwritten: u64,
}

// Manual impl: the derive would demand `T: Default` it doesn't need.
impl<T> Default for Ring<T> {
    fn default() -> Self {
        Self::new(0)
    }
}

impl<T> Ring<T> {
    /// A ring holding the most recent `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self {
            // Cap the eager allocation; the deque grows on demand.
            items: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            overwritten: 0,
        }
    }

    /// Append an item, evicting the oldest when full.
    pub fn push(&mut self, item: T) {
        if self.capacity == 0 {
            return;
        }
        if self.items.len() == self.capacity {
            self.items.pop_front();
            self.overwritten += 1;
        }
        self.items.push_back(item);
    }

    /// The retained items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items pushed out of the ring by newer ones.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Drop all retained items (the overwrite counter keeps counting).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<T: fmt::Display> Ring<T> {
    /// Render the retained items as text, one `Display` line per item.
    pub fn dump(&self) -> String {
        self.dump_last(self.items.len())
    }

    /// Render only the last `n` retained items, one line per item.
    ///
    /// When the dump covers the entire retained history and the ring has
    /// wrapped, the first line is an explicit `TRUNCATED` marker with the
    /// overwrite count — the record is the tail of a longer run, and a
    /// reader stitching causal timelines out of it must know that the
    /// missing head was overwritten, not absent.
    pub fn dump_last(&self, n: usize) -> String {
        let mut out = String::new();
        if n >= self.items.len() && self.overwritten > 0 {
            out.push_str(&format!(
                "!!! TRUNCATED: {} earlier item(s) overwritten\n",
                self.overwritten
            ));
        }
        let skip = self.items.len().saturating_sub(n);
        for item in self.items.iter().skip(skip) {
            out.push_str(&item.to_string());
            out.push('\n');
        }
        out
    }
}

impl<'a, T> IntoIterator for &'a Ring<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_and_orders() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 2);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_a_noop() {
        let mut r = Ring::new(0);
        r.push(1);
        assert!(r.is_empty());
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn dump_last_takes_the_tail() {
        let mut r = Ring::new(8);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.dump_last(2), "3\n4\n");
        assert_eq!(r.dump().lines().count(), 5);
        assert_eq!(r.dump_last(99).lines().count(), 5);
    }

    #[test]
    fn full_dump_of_wrapped_ring_carries_truncation_marker() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(i);
        }
        // A partial tail is not the whole record: no marker.
        assert_eq!(r.dump_last(2), "3\n4\n");
        // The "whole" record after a wrap must say what it lost.
        let full = r.dump();
        assert!(full.starts_with("!!! TRUNCATED: 2 earlier item(s) overwritten\n"));
        assert_eq!(full.lines().count(), 4);
        assert_eq!(r.dump_last(99), full);
    }

    #[test]
    fn clear_keeps_counting() {
        let mut r = Ring::new(1);
        r.push(1);
        r.push(2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.overwritten(), 1);
    }
}
