//! # ct-transport — the layered byte-stream baseline
//!
//! A from-scratch TCP-like transport and the *layered* protocol stack built
//! on it. This crate is the paper's straw man, implemented faithfully and
//! competently: the architecture the paper critiques has to be real for the
//! critique to be measurable.
//!
//! Per §3, only the **data-transfer phase** is modelled — connection setup,
//! service location etc. "do not occur at the same time as data transfer"
//! and are out of scope. What is here:
//!
//! * [`segment`] — the wire format: sequence/ack numbers, window, flags and
//!   an Internet checksum over the whole segment.
//! * [`stream`] — [`stream::StreamTransport`]: a symmetric, poll-driven
//!   endpoint with cumulative ACKs, RTT-estimated retransmission timeout
//!   with exponential backoff, triple-duplicate-ACK fast retransmit,
//!   AIMD congestion control (slow start + congestion avoidance), sliding-
//!   window flow control, and **strict in-order delivery** — the property
//!   that creates head-of-line blocking when the network loses or reorders
//!   (§5: "a lost packet stops the application from performing presentation
//!   conversion").
//! * [`driver`] — glue that runs a pair of transports over a
//!   [`ct_netsim::Network`], with timer integration.
//! * [`stack`] — the **layered stack** (experiment E4): presentation,
//!   encryption, integrity and the app copy executed as separate passes
//!   with intermediate buffers, each pass timed so the harness can report
//!   how much of the stack's overhead each layer accounts for.
//!
//! The transport instruments exactly the quantities the paper argues about:
//! in-band control cost per segment (T2), retransmissions, and the
//! out-of-order hold-up delay that ALF eliminates (X1).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod segment;
pub mod stack;
pub mod stream;

pub use driver::{run_transfer, run_transfer_telemetry, TransferReport, TransportPair};
pub use segment::{Segment, SegmentError, HEADER_BYTES};
pub use stream::{StreamConfig, StreamStats, StreamTransport};
