//! The byte-stream transport endpoint.
//!
//! [`StreamTransport`] is a symmetric (both ends run the same code),
//! poll-driven endpoint implementing the in-band control functions the
//! paper catalogs in §3 — demultiplexing is the caller's job (ports are
//! carried but a single association is assumed), and this module does the
//! rest: error detection, acknowledgement, flow/congestion control,
//! retransmission, and strict in-order delivery.
//!
//! **In-order delivery is the load-bearing property.** When a segment is
//! lost, everything behind it sits in the out-of-order store until the
//! retransmission arrives; the time data spends there is recorded in
//! [`StreamStats::hol_delay_total`] / [`StreamStats::hol_delay_max`]. That
//! is the head-of-line blocking that experiment X1 compares against the ALF
//! transport's out-of-order ADU delivery.
//!
//! Mechanisms (deliberately classic, BSD-style):
//! * cumulative ACKs, immediate (no delayed-ACK timer — keeps runs
//!   deterministic and favours the baseline);
//! * RTT-estimated RTO (RFC 6298 smoothing) with exponential backoff and
//!   Karn's rule (no samples from retransmitted segments);
//! * triple-duplicate-ACK fast retransmit;
//! * AIMD congestion control: slow start, congestion avoidance, multiplicative
//!   decrease on loss;
//! * sliding-window flow control from the peer's advertised window.

use crate::segment::{Segment, SegmentError, FLAG_ACK, FLAG_FIN};
use ct_netsim::time::{SimDuration, SimTime};
use ct_wire::buf::ByteFifo;
use ct_wire::WireBuf;
use std::collections::BTreeMap;

/// Static configuration of a [`StreamTransport`].
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Maximum segment payload size.
    pub mss: usize,
    /// Send buffer capacity (unsent + in-flight bytes).
    pub send_buffer: usize,
    /// Receive buffer capacity (delivered-but-unread + out-of-order bytes);
    /// also the advertised window ceiling.
    pub recv_buffer: usize,
    /// Initial retransmission timeout.
    pub rto_initial: SimDuration,
    /// RTO lower bound.
    pub rto_min: SimDuration,
    /// RTO upper bound.
    pub rto_max: SimDuration,
    /// Initial congestion window in segments (RFC 5681-style IW).
    pub initial_cwnd_segments: usize,
    /// Initial slow-start threshold in bytes.
    pub initial_ssthresh: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            mss: 1400,
            send_buffer: 256 * 1024,
            recv_buffer: 256 * 1024,
            rto_initial: SimDuration::from_millis(200),
            rto_min: SimDuration::from_millis(10),
            rto_max: SimDuration::from_secs(5),
            initial_cwnd_segments: 4,
            initial_ssthresh: 64 * 1024,
        }
    }
}

/// Counters maintained by the transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Segments transmitted (including retransmissions and pure ACKs).
    pub segments_out: u64,
    /// Segments accepted after checksum verification.
    pub segments_in: u64,
    /// Payload bytes handed to the application via `recv`.
    pub bytes_delivered: u64,
    /// Retransmissions triggered by timeout.
    pub rto_retransmits: u64,
    /// Retransmissions triggered by triple duplicate ACKs.
    pub fast_retransmits: u64,
    /// Segments dropped on arrival for checksum failure.
    pub checksum_drops: u64,
    /// Arrived segments wholly below `rcv_nxt` (duplicates).
    pub old_segments: u64,
    /// Segments that arrived out of order and were buffered.
    pub ooo_segments: u64,
    /// Peak bytes held in the out-of-order store.
    pub ooo_bytes_peak: usize,
    /// Total time in-order delivery was delayed by gaps: the sum over all
    /// out-of-order bytes of (delivery time − arrival time). **This is the
    /// head-of-line blocking cost.**
    pub hol_delay_total: SimDuration,
    /// Largest single hold-up suffered by any buffered segment.
    pub hol_delay_max: SimDuration,
    /// Bytes that experienced a non-zero hold-up.
    pub hol_delayed_bytes: u64,
}

impl StreamStats {
    /// Publish every counter into a metrics registry under `prefix` (e.g.
    /// `stream.a.segments_out`). End-of-run publication: allocates one name
    /// string per metric, so keep it off per-segment paths.
    pub fn publish(&self, reg: &mut ct_telemetry::MetricsRegistry, prefix: &str) {
        let counters: [(&str, u64); 11] = [
            ("segments_out", self.segments_out),
            ("segments_in", self.segments_in),
            ("bytes_delivered", self.bytes_delivered),
            ("rto_retransmits", self.rto_retransmits),
            ("fast_retransmits", self.fast_retransmits),
            ("checksum_drops", self.checksum_drops),
            ("old_segments", self.old_segments),
            ("ooo_segments", self.ooo_segments),
            ("ooo_bytes_peak", self.ooo_bytes_peak as u64),
            (
                "hol_delay_total_us",
                self.hol_delay_total.as_nanos() / 1_000,
            ),
            ("hol_delayed_bytes", self.hol_delayed_bytes),
        ];
        for (name, v) in counters {
            reg.counter_set(&format!("{prefix}.{name}"), v);
        }
        reg.counter_set(
            &format!("{prefix}.hol_delay_max_us"),
            self.hol_delay_max.as_nanos() / 1_000,
        );
    }
}

/// A segment in flight awaiting acknowledgement. The payload is a
/// [`WireBuf`] view, so holding it for retransmission shares the chunk cut
/// from the send buffer rather than copying it.
#[derive(Debug, Clone)]
struct Inflight {
    payload: WireBuf,
    fin: bool,
    sent_at: SimTime,
    retransmitted: bool,
}

/// A buffered out-of-order arrival (a view into the received frame).
#[derive(Debug)]
struct OooSeg {
    payload: WireBuf,
    arrived_at: SimTime,
}

/// A byte-stream transport endpoint (one side of an association).
#[derive(Debug)]
pub struct StreamTransport {
    cfg: StreamConfig,
    local_port: u16,
    remote_port: u16,

    // --- send side ---
    send_buf: ByteFifo,
    snd_una: u64,
    snd_nxt: u64,
    inflight: BTreeMap<u64, Inflight>,
    cwnd: usize,
    ssthresh: usize,
    peer_window: usize,
    dup_acks: u32,
    fast_retx_pending: bool,
    /// Loss-recovery episode state (NewReno-style): while `snd_una` has not
    /// passed `recover_point`, each partial ACK retransmits the next hole.
    in_recovery: bool,
    recover_point: u64,
    rto: SimDuration,
    rto_deadline: Option<SimTime>,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    fin_pending: bool,
    fin_sent: bool,
    fin_acked: bool,

    // --- receive side ---
    rcv_nxt: u64,
    ooo: BTreeMap<u64, OooSeg>,
    ooo_bytes: usize,
    recv_ready: ByteFifo,
    ack_pending: bool,
    fin_seq: Option<u64>,
    peer_finished: bool,

    /// Counters.
    pub stats: StreamStats,

    /// Observability sink + the layer label to record under.
    telemetry: Option<(ct_telemetry::Telemetry, &'static str)>,
}

impl StreamTransport {
    /// Create an endpoint with the given ports.
    pub fn new(cfg: StreamConfig, local_port: u16, remote_port: u16) -> Self {
        Self {
            cfg,
            local_port,
            remote_port,
            send_buf: ByteFifo::new(),
            snd_una: 0,
            snd_nxt: 0,
            inflight: BTreeMap::new(),
            cwnd: cfg.initial_cwnd_segments * cfg.mss,
            ssthresh: cfg.initial_ssthresh,
            peer_window: cfg.recv_buffer, // optimistic until first segment
            dup_acks: 0,
            fast_retx_pending: false,
            in_recovery: false,
            recover_point: 0,
            rto: cfg.rto_initial,
            rto_deadline: None,
            srtt: None,
            rttvar: SimDuration::ZERO,
            fin_pending: false,
            fin_sent: false,
            fin_acked: false,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            ooo_bytes: 0,
            recv_ready: ByteFifo::new(),
            ack_pending: false,
            fin_seq: None,
            peer_finished: false,
            stats: StreamStats::default(),
            telemetry: None,
        }
    }

    /// Attach an observability sink; `role` labels this endpoint's flight-
    /// recorder events (`"sender"` / `"receiver"`). With tracing armed,
    /// the endpoint records `seg_recv` (a retained data segment: `a` =
    /// stream offset, `len` = bytes kept) and `stream_adv` (`a` = the new
    /// in-order delivery point, `len` = bytes it advanced) — the two
    /// events the HOL profiler needs to measure how long arrived bytes
    /// waited behind a gap.
    pub fn attach_telemetry(&mut self, telemetry: ct_telemetry::Telemetry, role: &'static str) {
        self.telemetry = Some((telemetry, role));
    }

    /// Record one flight-recorder event — a no-op unless telemetry is
    /// attached with tracing armed (one branch, no allocation).
    fn trace(&self, at: SimTime, kind: &'static str, a: u64, len: u64) {
        if let Some((tel, role)) = &self.telemetry {
            if tel.tracing_enabled() {
                tel.record(ct_telemetry::Event {
                    at_nanos: at.as_nanos(),
                    layer: role,
                    kind,
                    assoc: u32::from(self.local_port),
                    adu: None,
                    a,
                    b: 0,
                    len,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Application interface
    // ------------------------------------------------------------------

    /// Queue bytes for transmission; returns how many were accepted
    /// (bounded by send-buffer space).
    pub fn send(&mut self, data: &[u8]) -> usize {
        let used = self.send_buf.len() + self.flight_bytes();
        let room = self.cfg.send_buffer.saturating_sub(used);
        let take = room.min(data.len());
        self.send_buf.push(&data[..take]);
        take
    }

    /// Signal that no more data will be sent (queues a FIN after pending data).
    pub fn finish(&mut self) {
        self.fin_pending = true;
    }

    /// Read delivered in-order bytes into `out`; returns the count.
    pub fn recv(&mut self, out: &mut [u8]) -> usize {
        let was_closed = self.advertised_window() < self.cfg.mss as u32;
        let n = self.recv_ready.pop_into(out);
        self.stats.bytes_delivered += n as u64;
        // Window-update ACK: if the advertised window was effectively
        // closed and the application just opened it, tell the peer —
        // otherwise the sender sits on a zero window until its
        // retransmission timer limps in (TCP's persist-timer problem).
        if n > 0 && was_closed && self.advertised_window() >= self.cfg.mss as u32 {
            self.ack_pending = true;
        }
        n
    }

    /// Bytes available to `recv` right now.
    pub fn recv_available(&self) -> usize {
        self.recv_ready.len()
    }

    /// True once the peer's FIN has been delivered in order (end of stream).
    pub fn peer_finished(&self) -> bool {
        self.peer_finished
    }

    /// True when everything we queued (including FIN) has been acknowledged.
    pub fn send_complete(&self) -> bool {
        self.send_buf.is_empty()
            && self.inflight.is_empty()
            && (!self.fin_pending || self.fin_acked)
    }

    /// Bytes the sender is holding for possible retransmission — the memory
    /// cost of transport-level recovery (experiment X4).
    pub fn retransmit_buffer_bytes(&self) -> usize {
        self.inflight.values().map(|s| s.payload.len()).sum()
    }

    /// The earliest pending timer, for event-loop integration.
    pub fn next_timeout(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    /// Current congestion window in bytes (diagnostics).
    pub fn cwnd(&self) -> usize {
        self.cwnd
    }

    // ------------------------------------------------------------------
    // Wire interface
    // ------------------------------------------------------------------

    /// Advance the protocol machine: fire timers, emit due segments.
    /// Returns encoded segments ready for the network.
    pub fn poll(&mut self, now: SimTime) -> Vec<Vec<u8>> {
        let mut out = Vec::new();

        // 1. Retransmission timeout.
        if let Some(deadline) = self.rto_deadline {
            if now >= deadline && !self.inflight.is_empty() {
                self.on_rto(now, &mut out);
            } else if self.inflight.is_empty() {
                self.rto_deadline = None;
            }
        }

        // 2. Fast retransmit requested by the ACK processor.
        if self.fast_retx_pending {
            self.fast_retx_pending = false;
            self.retransmit_first(now, &mut out);
        }

        // 3. New data within min(cwnd, peer window).
        loop {
            let window = self.cwnd.min(self.peer_window);
            let flight = self.flight_bytes();
            let avail = window.saturating_sub(flight);
            let take = self.cfg.mss.min(self.send_buf.len()).min(avail);
            if take == 0 {
                break;
            }
            let payload: WireBuf = self.send_buf.take(take).into();
            let seq = self.snd_nxt;
            self.snd_nxt += take as u64;
            self.inflight.insert(
                seq,
                Inflight {
                    payload: payload.clone(),
                    fin: false,
                    sent_at: now,
                    retransmitted: false,
                },
            );
            out.push(self.make_segment(seq, payload, false));
            if self.rto_deadline.is_none() {
                self.rto_deadline = Some(now + self.rto);
            }
        }

        // 4. FIN once the send buffer has drained.
        if self.fin_pending && !self.fin_sent && self.send_buf.is_empty() {
            let window = self.cwnd.min(self.peer_window);
            if window > self.flight_bytes() {
                let seq = self.snd_nxt;
                self.snd_nxt += 1;
                self.fin_sent = true;
                self.inflight.insert(
                    seq,
                    Inflight {
                        payload: WireBuf::empty(),
                        fin: true,
                        sent_at: now,
                        retransmitted: false,
                    },
                );
                out.push(self.make_segment(seq, WireBuf::empty(), true));
                if self.rto_deadline.is_none() {
                    self.rto_deadline = Some(now + self.rto);
                }
            }
        }

        // 5. Pure ACK if nothing else carried it.
        if self.ack_pending && out.is_empty() {
            let seq = self.snd_nxt;
            out.push(self.make_segment(seq, WireBuf::empty(), false));
        }

        self.stats.segments_out += out.len() as u64;
        out
    }

    /// Ingest one wire frame addressed to this endpoint (borrowed buffer —
    /// the payload is copied out; prefer [`StreamTransport::on_frame`] when
    /// the frame is owned).
    pub fn on_segment(&mut self, now: SimTime, buf: &[u8]) {
        let seg = match Segment::decode(buf) {
            Ok(s) => s,
            Err(SegmentError::BadChecksum) => {
                self.stats.checksum_drops += 1;
                return;
            }
            Err(_) => {
                self.stats.checksum_drops += 1;
                return;
            }
        };
        self.on_parsed(now, seg);
    }

    /// Ingest one owned wire frame, zero-copy: out-of-order payloads are
    /// buffered as views into the frame instead of copies.
    pub fn on_frame(&mut self, now: SimTime, frame: WireBuf) {
        let seg = match Segment::decode_frame(&frame) {
            Ok(s) => s,
            Err(_) => {
                self.stats.checksum_drops += 1;
                return;
            }
        };
        self.on_parsed(now, seg);
    }

    fn on_parsed(&mut self, now: SimTime, seg: Segment) {
        if seg.dst_port != self.local_port {
            // Mis-delivery; a full implementation would demultiplex.
            return;
        }
        self.stats.segments_in += 1;

        // --- ACK processing (the sender half of the control path) ---
        if seg.flags & FLAG_ACK != 0 {
            self.process_ack(now, &seg);
        }
        self.peer_window = seg.window as usize;

        // --- data processing (the receiver half) ---
        if !seg.payload.is_empty() || seg.is_fin() {
            self.process_data(now, seg);
            self.ack_pending = true;
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn flight_bytes(&self) -> usize {
        (self.snd_nxt - self.snd_una) as usize
    }

    fn advertised_window(&self) -> u32 {
        self.cfg
            .recv_buffer
            .saturating_sub(self.recv_ready.len() + self.ooo_bytes) as u32
    }

    fn make_segment(&mut self, seq: u64, payload: WireBuf, fin: bool) -> Vec<u8> {
        self.ack_pending = false;
        Segment {
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq,
            ack: self.rcv_nxt,
            flags: FLAG_ACK | if fin { FLAG_FIN } else { 0 },
            window: self.advertised_window(),
            payload,
        }
        .encode()
    }

    fn process_ack(&mut self, now: SimTime, seg: &Segment) {
        if seg.ack > self.snd_una {
            let acked = seg.ack - self.snd_una;
            self.snd_una = seg.ack;
            self.dup_acks = 0;
            // Drop fully covered in-flight segments; RTT-sample fresh ones.
            let covered: Vec<u64> = self
                .inflight
                .range(..seg.ack)
                .filter(|(&seq, s)| seq + s.payload.len() as u64 + u64::from(s.fin) <= seg.ack)
                .map(|(&seq, _)| seq)
                .collect();
            for seq in covered {
                let s = self.inflight.remove(&seq).expect("listed");
                if !s.retransmitted {
                    self.rtt_sample(now.saturating_since(s.sent_at));
                }
                if s.fin {
                    self.fin_acked = true;
                }
            }
            // Loss-recovery bookkeeping (NewReno partial ACKs): while still
            // short of the recovery point, every cumulative advance means
            // the next hole is also missing — retransmit it immediately
            // instead of waiting a full RTO per hole.
            if self.in_recovery {
                if self.snd_una >= self.recover_point {
                    self.in_recovery = false;
                } else if !self.inflight.is_empty() {
                    self.fast_retx_pending = true;
                }
            }
            // Congestion window growth (suspended during recovery).
            if !self.in_recovery {
                if self.cwnd < self.ssthresh {
                    self.cwnd += acked as usize; // slow start: +1 MSS per MSS acked
                } else {
                    // Congestion avoidance: ~ +MSS per RTT.
                    let inc = (self.cfg.mss * self.cfg.mss / self.cwnd.max(1)).max(1);
                    self.cwnd += inc;
                }
            }
            // Re-arm or disarm the timer.
            self.rto_deadline = if self.inflight.is_empty() {
                None
            } else {
                Some(now + self.rto)
            };
        } else if seg.ack == self.snd_una
            && !self.inflight.is_empty()
            && seg.payload.is_empty()
            && !seg.is_fin()
        {
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery {
                // Fast retransmit + multiplicative decrease, entering a
                // recovery episode that lasts until `recover_point` is acked.
                let flight = self.flight_bytes();
                self.ssthresh = (flight / 2).max(2 * self.cfg.mss);
                self.cwnd = self.ssthresh;
                self.in_recovery = true;
                self.recover_point = self.snd_nxt;
                self.fast_retx_pending = true;
                self.stats.fast_retransmits += 1;
            }
        }
    }

    fn process_data(&mut self, now: SimTime, seg: Segment) {
        let seg_end = seg.seq + seg.payload.len() as u64;
        if seg.is_fin() {
            self.fin_seq = Some(seg_end);
        }
        if seg_end + u64::from(seg.is_fin()) <= self.rcv_nxt {
            // Entirely old: duplicate delivery or a retransmission racing
            // our ACK. Re-acknowledge.
            self.stats.old_segments += 1;
            return;
        }
        let mut payload = seg.payload;
        let mut seq = seg.seq;
        if seq < self.rcv_nxt {
            // Partial overlap: trim the stale prefix (an O(1) re-view, not
            // a shift of the remaining bytes).
            let skip = (self.rcv_nxt - seq) as usize;
            payload = payload.slice(skip.min(payload.len())..);
            seq = self.rcv_nxt;
        }
        let rcv_before = self.rcv_nxt;
        if seq == self.rcv_nxt {
            // In order: deliver immediately (zero hold-up) — but never
            // beyond the receive buffer. A sender that overruns the
            // advertised window has its excess dropped and retransmitted,
            // which is how the window stays authoritative.
            let room = self
                .cfg
                .recv_buffer
                .saturating_sub(self.recv_ready.len() + self.ooo_bytes);
            let accept = payload.len().min(room);
            payload = payload.slice(..accept);
            if accept > 0 {
                self.trace(now, "seg_recv", seq, accept as u64);
            }
            self.rcv_nxt += accept as u64;
            self.recv_ready.push(&payload);
            self.drain_ooo(now);
        } else {
            // Out of order: hold until the gap fills. Respect the window.
            if payload.len() + self.ooo_bytes + self.recv_ready.len() <= self.cfg.recv_buffer
                && !self.ooo.contains_key(&seq)
            {
                self.trace(now, "seg_recv", seq, payload.len() as u64);
                self.ooo_bytes += payload.len();
                self.stats.ooo_segments += 1;
                self.stats.ooo_bytes_peak = self.stats.ooo_bytes_peak.max(self.ooo_bytes);
                self.ooo.insert(
                    seq,
                    OooSeg {
                        payload,
                        arrived_at: now,
                    },
                );
            }
            // else: window overflow or duplicate — silently dropped, the
            // sender will retransmit.
        }
        // In-order delivery advanced (this segment and/or drained ooo
        // holdings): record the new frontier before check_fin so the FIN's
        // +1 sequence slot never counts as delivered payload.
        let advanced = self.rcv_nxt - rcv_before;
        if advanced > 0 {
            self.trace(now, "stream_adv", self.rcv_nxt, advanced);
        }
        self.check_fin();
    }

    /// Pull newly contiguous segments out of the out-of-order store,
    /// charging their wait time to the head-of-line blocking accounts.
    fn drain_ooo(&mut self, now: SimTime) {
        while let Some((&seq, _)) = self.ooo.first_key_value() {
            if seq > self.rcv_nxt {
                break;
            }
            let (_, mut entry) = self.ooo.pop_first().expect("checked");
            self.ooo_bytes -= entry.payload.len();
            if seq < self.rcv_nxt {
                let skip = (self.rcv_nxt - seq) as usize;
                if skip >= entry.payload.len() {
                    continue; // fully stale
                }
                entry.payload = entry.payload.slice(skip..);
            }
            let waited = now.saturating_since(entry.arrived_at);
            if waited > SimDuration::ZERO {
                self.stats.hol_delay_total += waited;
                self.stats.hol_delay_max = self.stats.hol_delay_max.max(waited);
                self.stats.hol_delayed_bytes += entry.payload.len() as u64;
            }
            self.rcv_nxt += entry.payload.len() as u64;
            self.recv_ready.push(&entry.payload);
        }
    }

    fn check_fin(&mut self) {
        if let Some(fs) = self.fin_seq {
            if self.rcv_nxt == fs && !self.peer_finished {
                self.rcv_nxt += 1;
                self.peer_finished = true;
            }
        }
    }

    fn on_rto(&mut self, now: SimTime, out: &mut Vec<Vec<u8>>) {
        self.stats.rto_retransmits += 1;
        // Multiplicative decrease + collapse to one segment, back off timer.
        let flight = self.flight_bytes();
        self.ssthresh = (flight / 2).max(2 * self.cfg.mss);
        self.cwnd = self.cfg.mss;
        self.in_recovery = true;
        self.recover_point = self.snd_nxt;
        self.rto = clamp(
            self.rto.saturating_mul(2),
            self.cfg.rto_min,
            self.cfg.rto_max,
        );
        self.dup_acks = 0;
        self.retransmit_first(now, out);
        self.rto_deadline = Some(now + self.rto);
    }

    fn retransmit_first(&mut self, now: SimTime, out: &mut Vec<Vec<u8>>) {
        let Some((&seq, _)) = self.inflight.first_key_value() else {
            return;
        };
        let (payload, fin) = {
            let s = self.inflight.get_mut(&seq).expect("checked");
            s.retransmitted = true;
            s.sent_at = now;
            (s.payload.clone(), s.fin)
        };
        out.push(self.make_segment(seq, payload, fin));
    }

    /// RFC 6298 smoothing.
    fn rtt_sample(&mut self, r: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = SimDuration::from_nanos(r.as_nanos() / 2);
            }
            Some(srtt) => {
                let diff = if srtt > r {
                    srtt.as_nanos() - r.as_nanos()
                } else {
                    r.as_nanos() - srtt.as_nanos()
                };
                self.rttvar = SimDuration::from_nanos((3 * self.rttvar.as_nanos() + diff) / 4);
                self.srtt = Some(SimDuration::from_nanos(
                    (7 * srtt.as_nanos() + r.as_nanos()) / 8,
                ));
            }
        }
        let rto = SimDuration::from_nanos(
            self.srtt.expect("set").as_nanos() + 4 * self.rttvar.as_nanos().max(1_000_000),
        );
        self.rto = clamp(rto, self.cfg.rto_min, self.cfg.rto_max);
    }
}

fn clamp(v: SimDuration, lo: SimDuration, hi: SimDuration) -> SimDuration {
    if v < lo {
        lo
    } else if v > hi {
        hi
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (StreamTransport, StreamTransport) {
        let cfg = StreamConfig::default();
        (
            StreamTransport::new(cfg, 1, 2),
            StreamTransport::new(cfg, 2, 1),
        )
    }

    /// Shuttle frames between two endpoints over a perfect in-memory wire
    /// until both are quiescent. Returns rounds taken.
    fn pump(a: &mut StreamTransport, b: &mut StreamTransport, mut now: SimTime) -> SimTime {
        for _ in 0..10_000 {
            now += SimDuration::from_micros(100);
            let fa = a.poll(now);
            let fb = b.poll(now);
            if fa.is_empty() && fb.is_empty() {
                return now;
            }
            for f in fa {
                b.on_segment(now, &f);
            }
            for f in fb {
                a.on_segment(now, &f);
            }
        }
        panic!("did not quiesce");
    }

    #[test]
    fn simple_transfer() {
        let (mut a, mut b) = pair();
        let msg = b"hello stream transport".to_vec();
        assert_eq!(a.send(&msg), msg.len());
        pump(&mut a, &mut b, SimTime::ZERO);
        let mut out = vec![0u8; 100];
        let n = b.recv(&mut out);
        assert_eq!(&out[..n], &msg[..]);
        assert!(a.send_complete());
    }

    #[test]
    fn large_transfer_multiple_segments() {
        let (mut a, mut b) = pair();
        let msg: Vec<u8> = (0..100_000).map(|i| (i * 7) as u8).collect();
        let mut offset = 0;
        let mut now = SimTime::ZERO;
        let mut got = Vec::new();
        for _ in 0..10_000 {
            offset += a.send(&msg[offset..]);
            now += SimDuration::from_micros(100);
            let fa = a.poll(now);
            let fb = b.poll(now);
            let idle = fa.is_empty() && fb.is_empty();
            for f in fa {
                b.on_segment(now, &f);
            }
            for f in fb {
                a.on_segment(now, &f);
            }
            let mut buf = [0u8; 4096];
            loop {
                let n = b.recv(&mut buf);
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            if idle && offset == msg.len() && got.len() == msg.len() {
                break;
            }
        }
        assert_eq!(got, msg);
        assert!(b.stats.segments_in > 10, "multiple segments used");
    }

    #[test]
    fn fin_handshake() {
        let (mut a, mut b) = pair();
        a.send(b"last words");
        a.finish();
        pump(&mut a, &mut b, SimTime::ZERO);
        let mut out = [0u8; 32];
        let n = b.recv(&mut out);
        assert_eq!(&out[..n], b"last words");
        assert!(b.peer_finished());
        assert!(a.send_complete());
    }

    #[test]
    fn lost_segment_retransmitted_on_timeout() {
        let (mut a, mut b) = pair();
        a.send(b"data that will be lost");
        let mut now = SimTime::ZERO;
        let frames = a.poll(now);
        assert_eq!(frames.len(), 1);
        // Drop it. Advance past the RTO.
        now += SimDuration::from_millis(500);
        let retx = a.poll(now);
        assert_eq!(retx.len(), 1, "RTO retransmission expected");
        assert_eq!(a.stats.rto_retransmits, 1);
        b.on_segment(now, &retx[0]);
        let mut out = [0u8; 64];
        let n = b.recv(&mut out);
        assert_eq!(&out[..n], b"data that will be lost");
    }

    #[test]
    fn rto_backs_off_exponentially() {
        let (mut a, _b) = pair();
        a.send(b"x");
        let mut now = SimTime::ZERO;
        a.poll(now);
        let mut deadlines = Vec::new();
        for _ in 0..3 {
            now = a.next_timeout().unwrap();
            let out = a.poll(now);
            assert_eq!(out.len(), 1);
            deadlines.push(a.next_timeout().unwrap().saturating_since(now));
        }
        assert!(deadlines[1] > deadlines[0]);
        assert!(deadlines[2] > deadlines[1]);
    }

    #[test]
    fn out_of_order_data_held_and_hol_counted() {
        let (mut a, mut b) = pair();
        // Craft two segments by polling, then deliver in reverse order.
        a.send(&[1u8; 1400]);
        a.send(&[2u8; 1400]);
        let t0 = SimTime::ZERO;
        let frames = a.poll(t0);
        assert_eq!(frames.len(), 2);
        let t1 = SimTime::from_millis(1);
        b.on_segment(t1, &frames[1]); // second segment first
        assert_eq!(b.recv_available(), 0, "gap blocks delivery");
        assert_eq!(b.stats.ooo_segments, 1);
        let t2 = SimTime::from_millis(5);
        b.on_segment(t2, &frames[0]); // gap fills
        assert_eq!(b.recv_available(), 2800);
        assert_eq!(b.stats.hol_delayed_bytes, 1400);
        assert_eq!(b.stats.hol_delay_max, SimDuration::from_millis(4));
    }

    #[test]
    fn duplicate_segments_ignored() {
        let (mut a, mut b) = pair();
        a.send(b"once only");
        let frames = a.poll(SimTime::ZERO);
        b.on_segment(SimTime::ZERO, &frames[0]);
        b.on_segment(SimTime::ZERO, &frames[0]);
        b.on_segment(SimTime::ZERO, &frames[0]);
        let mut out = [0u8; 64];
        let n = b.recv(&mut out);
        assert_eq!(&out[..n], b"once only");
        assert_eq!(b.recv(&mut out), 0);
        assert_eq!(b.stats.old_segments, 2);
    }

    #[test]
    fn corrupted_segment_dropped() {
        let (mut a, mut b) = pair();
        a.send(b"integrity matters");
        let mut frames = a.poll(SimTime::ZERO);
        frames[0][35] ^= 0xFF;
        b.on_segment(SimTime::ZERO, &frames[0]);
        assert_eq!(b.recv_available(), 0);
        assert_eq!(b.stats.checksum_drops, 1);
    }

    #[test]
    fn triple_dup_ack_triggers_fast_retransmit() {
        let (mut a, mut b) = pair();
        let data = vec![7u8; 1400 * 5];
        a.send(&data);
        let t = SimTime::ZERO;
        let frames = a.poll(t);
        assert!(frames.len() >= 4);
        // Lose frames[0]; deliver 1..4 -> three dup ACKs.
        for f in &frames[1..] {
            b.on_segment(t, f);
        }
        let acks = b.poll(t);
        assert!(!acks.is_empty());
        for ack in &acks {
            a.on_segment(t, ack);
        }
        // b sends one cumulative ack per poll; we need three dup acks, so
        // deliver the segments one at a time instead.
        let (mut a, mut b) = pair();
        a.send(&data);
        let frames = a.poll(t);
        for f in &frames[1..4] {
            b.on_segment(t, f);
            for ack in b.poll(t) {
                a.on_segment(t, &ack);
            }
        }
        assert_eq!(a.stats.fast_retransmits, 1);
        let retx = a.poll(t);
        assert!(!retx.is_empty(), "fast retransmission sent");
        b.on_segment(t, &retx[0]);
        assert_eq!(b.recv_available(), 1400 * 4);
    }

    #[test]
    fn flow_control_respects_peer_window() {
        let cfg = StreamConfig {
            recv_buffer: 4096,
            ..StreamConfig::default()
        };
        let mut a = StreamTransport::new(StreamConfig::default(), 1, 2);
        let mut b = StreamTransport::new(cfg, 2, 1);
        let big = vec![0xEE; 100_000];
        let mut sent = a.send(&big);
        let mut now = SimTime::ZERO;
        // b never reads: a must stall at ~4096 bytes in flight+delivered.
        for _ in 0..200 {
            now += SimDuration::from_micros(200);
            sent += a.send(&big[sent..]);
            for f in a.poll(now) {
                b.on_segment(now, &f);
            }
            for f in b.poll(now) {
                a.on_segment(now, &f);
            }
        }
        assert!(
            b.recv_available() <= 4096,
            "receiver buffered {} > window",
            b.recv_available()
        );
        // Now the app reads, the window reopens, and the rest flows.
        let mut got = 0usize;
        let mut buf = [0u8; 4096];
        for _ in 0..2000 {
            now += SimDuration::from_micros(200);
            loop {
                let n = b.recv(&mut buf);
                if n == 0 {
                    break;
                }
                got += n;
            }
            sent += a.send(&big[sent..]);
            for f in a.poll(now) {
                b.on_segment(now, &f);
            }
            for f in b.poll(now) {
                a.on_segment(now, &f);
            }
            if got == big.len() {
                break;
            }
        }
        assert_eq!(got, big.len());
    }

    #[test]
    fn window_update_sent_when_app_reopens_zero_window() {
        let cfg = StreamConfig {
            recv_buffer: 2800, // two segments
            ..StreamConfig::default()
        };
        let mut a = StreamTransport::new(StreamConfig::default(), 1, 2);
        let mut b = StreamTransport::new(cfg, 2, 1);
        a.send(&vec![7u8; 2800]);
        let t = SimTime::ZERO;
        for f in a.poll(t) {
            b.on_segment(t, &f);
        }
        for f in b.poll(t) {
            a.on_segment(t, &f);
        }
        // b's window is now closed; a cannot send more.
        a.send(&vec![8u8; 1400]);
        assert!(a.poll(t).is_empty(), "zero window must block the sender");
        // The application reads: a window-update ACK must be produced
        // without waiting for any timer.
        let mut buf = vec![0u8; 2800];
        assert_eq!(b.recv(&mut buf), 2800);
        let updates = b.poll(t);
        assert_eq!(updates.len(), 1, "window update expected");
        a.on_segment(t, &updates[0]);
        assert_eq!(a.poll(t).len(), 1, "sender resumes immediately");
    }

    #[test]
    fn cwnd_grows_on_acks() {
        let (mut a, mut b) = pair();
        let initial = a.cwnd();
        a.send(&vec![1u8; 20_000]);
        pump(&mut a, &mut b, SimTime::ZERO);
        assert!(a.cwnd() > initial, "{} !> {initial}", a.cwnd());
    }

    #[test]
    fn cwnd_collapses_on_rto() {
        let (mut a, _) = pair();
        a.send(&vec![1u8; 20_000]);
        let mut now = SimTime::ZERO;
        a.poll(now);
        let before = a.cwnd();
        now = a.next_timeout().unwrap();
        a.poll(now);
        assert!(a.cwnd() < before);
        assert_eq!(a.cwnd(), StreamConfig::default().mss);
    }

    #[test]
    fn send_buffer_bounded() {
        let cfg = StreamConfig {
            send_buffer: 1000,
            ..StreamConfig::default()
        };
        let mut a = StreamTransport::new(cfg, 1, 2);
        assert_eq!(a.send(&vec![0u8; 5000]), 1000);
        assert_eq!(a.send(&[1, 2, 3]), 0);
    }

    #[test]
    fn retransmit_buffer_reports_inflight() {
        let (mut a, _) = pair();
        a.send(&vec![0u8; 3000]);
        a.poll(SimTime::ZERO);
        assert_eq!(a.retransmit_buffer_bytes(), 3000);
    }

    #[test]
    fn mis_addressed_segment_ignored() {
        let (a, _) = pair();
        let mut other = StreamTransport::new(StreamConfig::default(), 9, 1);
        other.send(b"to port 1... but b is port 2");
        let frames = other.poll(SimTime::ZERO);
        let mut b = StreamTransport::new(StreamConfig::default(), 2, 1);
        b.on_segment(SimTime::ZERO, &frames[0]);
        assert_eq!(b.stats.segments_in, 0);
        assert_eq!(b.recv_available(), 0);
        let _ = a;
    }

    #[test]
    fn bidirectional_simultaneous_transfer() {
        // Both endpoints stream to each other at once: piggybacked ACKs,
        // independent sequence spaces, no interference.
        let (mut a, mut b) = pair();
        let to_b: Vec<u8> = (0..40_000).map(|i| (i % 251) as u8).collect();
        let to_a: Vec<u8> = (0..25_000).map(|i| (i % 127) as u8).collect();
        let mut sent_ab = 0usize;
        let mut sent_ba = 0usize;
        let mut got_b = Vec::new();
        let mut got_a = Vec::new();
        let mut now = SimTime::ZERO;
        let mut buf = [0u8; 4096];
        for _ in 0..20_000 {
            sent_ab += a.send(&to_b[sent_ab..]);
            sent_ba += b.send(&to_a[sent_ba..]);
            now += SimDuration::from_micros(100);
            let fa = a.poll(now);
            let fb = b.poll(now);
            let idle = fa.is_empty() && fb.is_empty();
            for f in fa {
                b.on_segment(now, &f);
            }
            for f in fb {
                a.on_segment(now, &f);
            }
            loop {
                let n = b.recv(&mut buf);
                if n == 0 {
                    break;
                }
                got_b.extend_from_slice(&buf[..n]);
            }
            loop {
                let n = a.recv(&mut buf);
                if n == 0 {
                    break;
                }
                got_a.extend_from_slice(&buf[..n]);
            }
            if idle && got_b.len() == to_b.len() && got_a.len() == to_a.len() {
                break;
            }
        }
        assert_eq!(got_b, to_b);
        assert_eq!(got_a, to_a);
    }

    #[test]
    fn pure_ack_emitted_when_idle() {
        let (mut a, mut b) = pair();
        a.send(b"ping");
        let frames = a.poll(SimTime::ZERO);
        b.on_segment(SimTime::ZERO, &frames[0]);
        let acks = b.poll(SimTime::ZERO);
        assert_eq!(acks.len(), 1);
        let seg = Segment::decode(&acks[0]).unwrap();
        assert!(seg.payload.is_empty());
        assert_eq!(seg.ack, 4);
    }
}
