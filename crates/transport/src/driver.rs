//! Glue between [`StreamTransport`] endpoints and the simulated network.
//!
//! The driver owns the event loop: it polls both endpoints, injects their
//! segments into the network, feeds arrivals back, lets the receiving
//! application drain continuously (the paper's pipeline requirement), and —
//! when the wire goes quiet — advances virtual time to the next
//! retransmission timer so loss recovery makes progress.

use crate::stream::{StreamConfig, StreamStats, StreamTransport};
use ct_netsim::fault::FaultConfig;
use ct_netsim::link::LinkConfig;
use ct_netsim::net::{Network, NodeId};
use ct_netsim::time::SimDuration;
use ct_wire::checksum::crc32;

/// A pair of stream endpoints attached to the ends of one simulated link.
#[derive(Debug)]
pub struct TransportPair {
    /// The network carrying the segments.
    pub net: Network,
    /// Node the `a` endpoint is bound to.
    pub node_a: NodeId,
    /// Node the `b` endpoint is bound to.
    pub node_b: NodeId,
    /// Endpoint a (conventionally the sender in tests).
    pub a: StreamTransport,
    /// Endpoint b (conventionally the receiver).
    pub b: StreamTransport,
}

impl TransportPair {
    /// Build a two-node network with the given link and fault profile and
    /// attach a transport endpoint to each node.
    pub fn new(seed: u64, link: LinkConfig, faults: FaultConfig, cfg: StreamConfig) -> Self {
        let mut net = Network::new(seed);
        let node_a = net.add_node();
        let node_b = net.add_node();
        net.connect(node_a, node_b, link, faults);
        Self {
            net,
            node_a,
            node_b,
            a: StreamTransport::new(cfg, 1, 2),
            b: StreamTransport::new(cfg, 2, 1),
        }
    }

    /// One driver round: poll endpoints, exchange frames, process one
    /// network event (or jump to the next timer if the wire is idle).
    /// Returns `false` if nothing can make progress any more.
    pub fn tick(&mut self) -> bool {
        let now = self.net.now();
        let mut moved = false;
        for f in self.a.poll(now) {
            moved = true;
            let _ = self.net.send(self.node_a, self.node_b, f);
        }
        for f in self.b.poll(now) {
            moved = true;
            let _ = self.net.send(self.node_b, self.node_a, f);
        }
        while let Some(frame) = self.net.recv(self.node_b) {
            moved = true;
            self.b.on_segment(self.net.now(), &frame.payload);
        }
        while let Some(frame) = self.net.recv(self.node_a) {
            moved = true;
            self.a.on_segment(self.net.now(), &frame.payload);
        }
        if !self.net.is_idle() {
            self.net.step();
            return true;
        }
        if moved {
            return true;
        }
        // Wire quiet, nothing produced: jump to the earliest timer.
        let next = match (self.a.next_timeout(), self.b.next_timeout()) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (Some(x), None) => Some(x),
            (None, Some(y)) => Some(y),
            (None, None) => None,
        };
        match next {
            Some(t) if t > now => {
                self.net.advance(t.saturating_since(now));
                true
            }
            Some(_) => true, // timer already due; next poll handles it
            None => false,   // truly stuck (or finished)
        }
    }
}

/// Outcome of [`run_transfer`].
#[derive(Debug, Clone)]
pub struct TransferReport {
    /// Whether the full payload arrived and both FINs completed.
    pub complete: bool,
    /// Application bytes transferred.
    pub bytes: u64,
    /// Virtual time from first send to completion.
    pub elapsed: SimDuration,
    /// Application-level goodput in megabits per simulated second.
    pub goodput_mbps: f64,
    /// CRC-32 of the bytes the receiving application read, for end-to-end
    /// integrity checking without buffering the whole transfer.
    pub received_crc32: u32,
    /// Sender-side statistics.
    pub sender: StreamStats,
    /// Receiver-side statistics.
    pub receiver: StreamStats,
    /// Network-level loss rate observed during the run.
    pub net_loss_rate: f64,
}

/// Drive a complete `a → b` transfer of `data` over a fresh [`TransportPair`],
/// with the receiving application reading continuously. Returns the report;
/// `complete` is false if the run hit the iteration guard (pathological
/// loss rates).
pub fn run_transfer(
    seed: u64,
    link: LinkConfig,
    faults: FaultConfig,
    cfg: StreamConfig,
    data: &[u8],
) -> TransferReport {
    run_transfer_telemetry(seed, link, faults, cfg, data, None)
}

/// [`run_transfer`] with an optional observability sink: the network and
/// both endpoints share it (`a` records under layer `"sender"`, `b` under
/// `"receiver"`), and both endpoints' [`StreamStats`] publish under
/// `stream.sender.*` / `stream.receiver.*` when the run settles. With
/// tracing armed the receiver's `seg_recv` / `stream_adv` events feed the
/// HOL profiler ([`ct_telemetry::span::stream_stalls`]).
pub fn run_transfer_telemetry(
    seed: u64,
    link: LinkConfig,
    faults: FaultConfig,
    cfg: StreamConfig,
    data: &[u8],
    telemetry: Option<&ct_telemetry::Telemetry>,
) -> TransferReport {
    let mut pair = TransportPair::new(seed, link, faults, cfg);
    if let Some(tel) = telemetry {
        pair.net.attach_telemetry(tel.clone());
        pair.a.attach_telemetry(tel.clone(), "sender");
        pair.b.attach_telemetry(tel.clone(), "receiver");
    }
    let start = pair.net.now();
    let mut offset = 0usize;
    let mut fin_queued = false;
    let mut received = 0u64;
    let mut crc_state = 0xFFFF_FFFFu32;
    let mut buf = vec![0u8; 64 * 1024];
    // Iteration guard: generous, proportional to work.
    let max_iters = 2_000_000 + data.len() / 16;
    let mut complete = false;
    for _ in 0..max_iters {
        if offset < data.len() {
            offset += pair.a.send(&data[offset..]);
        }
        if offset == data.len() && !fin_queued {
            pair.a.finish();
            fin_queued = true;
        }
        loop {
            let n = pair.b.recv(&mut buf);
            if n == 0 {
                break;
            }
            crc_state = ct_wire::checksum::crc32_update(crc_state, &buf[..n]);
            received += n as u64;
        }
        if fin_queued
            && pair.a.send_complete()
            && pair.b.peer_finished()
            && received == data.len() as u64
        {
            complete = true;
            break;
        }
        if !pair.tick() {
            break;
        }
    }
    let elapsed = pair.net.now().saturating_since(start);
    if let Some(tel) = telemetry {
        let mut reg = tel.metrics_mut();
        pair.a.stats.publish(&mut reg, "stream.sender");
        pair.b.stats.publish(&mut reg, "stream.receiver");
        reg.counter_set("stream.run.delivered_bytes", received);
        reg.counter_set("stream.run.elapsed_ns", elapsed.as_nanos());
    }
    TransferReport {
        complete,
        bytes: received,
        elapsed,
        goodput_mbps: ct_wire::mbps(received, elapsed.as_secs_f64()),
        received_crc32: crc_state ^ 0xFFFF_FFFF,
        sender: pair.a.stats,
        receiver: pair.b.stats,
        net_loss_rate: pair.net.stats().loss_rate(),
    }
}

/// CRC-32 of a buffer — helper so callers can compare against
/// [`TransferReport::received_crc32`].
pub fn payload_crc(data: &[u8]) -> u32 {
    crc32(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i.wrapping_mul(131) >> 3) as u8).collect()
    }

    #[test]
    fn clean_link_transfer() {
        let data = payload(200_000);
        let r = run_transfer(
            1,
            LinkConfig::lan(),
            FaultConfig::none(),
            StreamConfig::default(),
            &data,
        );
        assert!(r.complete);
        assert_eq!(r.bytes, data.len() as u64);
        assert_eq!(r.received_crc32, payload_crc(&data));
        assert_eq!(r.sender.rto_retransmits, 0);
        assert!(r.goodput_mbps > 1.0, "goodput {}", r.goodput_mbps);
    }

    #[test]
    fn lossy_link_still_delivers_exactly() {
        let data = payload(100_000);
        let r = run_transfer(
            2,
            LinkConfig::lan(),
            FaultConfig::loss(0.05),
            StreamConfig::default(),
            &data,
        );
        assert!(r.complete, "transfer must survive 5% loss");
        assert_eq!(r.received_crc32, payload_crc(&data));
        assert!(
            r.sender.rto_retransmits + r.sender.fast_retransmits > 0,
            "loss must have forced recovery"
        );
    }

    #[test]
    fn corruption_detected_and_recovered() {
        let data = payload(50_000);
        let r = run_transfer(
            3,
            LinkConfig::lan(),
            FaultConfig::corruption(0.05),
            StreamConfig::default(),
            &data,
        );
        assert!(r.complete);
        assert_eq!(r.received_crc32, payload_crc(&data));
        assert!(r.receiver.checksum_drops > 0 || r.sender.checksum_drops > 0);
    }

    #[test]
    fn reordering_causes_hol_blocking() {
        let data = payload(200_000);
        let r = run_transfer(
            4,
            LinkConfig::lan(),
            FaultConfig::reordering(0.2, SimDuration::from_millis(2)),
            StreamConfig::default(),
            &data,
        );
        assert!(r.complete);
        assert_eq!(r.received_crc32, payload_crc(&data));
        assert!(
            r.receiver.hol_delay_total > SimDuration::ZERO,
            "reordering must show up as head-of-line delay"
        );
    }

    #[test]
    fn loss_increases_completion_time() {
        let data = payload(150_000);
        let clean = run_transfer(
            5,
            LinkConfig::lan(),
            FaultConfig::none(),
            StreamConfig::default(),
            &data,
        );
        let lossy = run_transfer(
            5,
            LinkConfig::lan(),
            FaultConfig::loss(0.03),
            StreamConfig::default(),
            &data,
        );
        assert!(clean.complete && lossy.complete);
        assert!(
            lossy.elapsed > clean.elapsed,
            "lossy {} !> clean {}",
            lossy.elapsed,
            clean.elapsed
        );
    }

    #[test]
    fn deterministic_runs() {
        let data = payload(80_000);
        let r1 = run_transfer(
            7,
            LinkConfig::lan(),
            FaultConfig::loss(0.02),
            StreamConfig::default(),
            &data,
        );
        let r2 = run_transfer(
            7,
            LinkConfig::lan(),
            FaultConfig::loss(0.02),
            StreamConfig::default(),
            &data,
        );
        assert_eq!(r1.elapsed, r2.elapsed);
        assert_eq!(r1.sender.segments_out, r2.sender.segments_out);
    }

    #[test]
    fn empty_transfer_completes() {
        let r = run_transfer(
            8,
            LinkConfig::lan(),
            FaultConfig::none(),
            StreamConfig::default(),
            &[],
        );
        assert!(r.complete);
        assert_eq!(r.bytes, 0);
    }

    #[test]
    fn wan_profile_slower_than_lan() {
        let data = payload(100_000);
        let lan = run_transfer(
            9,
            LinkConfig::lan(),
            FaultConfig::none(),
            StreamConfig::default(),
            &data,
        );
        let wan = run_transfer(
            9,
            LinkConfig::wan(),
            FaultConfig::none(),
            StreamConfig::default(),
            &data,
        );
        assert!(lan.complete && wan.complete);
        assert!(wan.elapsed > lan.elapsed);
    }
}
