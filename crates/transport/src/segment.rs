//! The transport segment wire format.
//!
//! ```text
//! 0        2        4            12           20    21   22       26        28        30
//! +--------+--------+------------+------------+-----+----+--------+---------+---------+
//! | src    | dst    | seq (u64)  | ack (u64)  |flags|rsvd| window | checksum| paylen  |
//! | port   | port   |            |            |     |    | (u32)  | (u16)   | (u16)   |
//! +--------+--------+------------+------------+-----+----+--------+---------+---------+
//! | payload ...                                                                       |
//! ```
//!
//! The checksum is the Internet checksum over the entire segment with the
//! checksum field zeroed — computing it is the transport's per-segment data
//! manipulation (Table 1's "Checksum" row in situ).

use ct_wire::checksum::{internet_checksum, InternetChecksum};
use ct_wire::header::{HeaderReader, HeaderWriter};
use ct_wire::WireBuf;

/// Fixed header length in bytes.
pub const HEADER_BYTES: usize = 30;

// The fused encode and the copy-free verify both rely on the payload
// starting on a 16-bit word boundary and the checksum field (offset 26)
// occupying exactly one aligned word.
const _: () = assert!(HEADER_BYTES.is_multiple_of(2));

/// Flag bit: the ack field is valid (set on every segment in practice).
pub const FLAG_ACK: u8 = 0x01;
/// Flag bit: sender has no more data; `seq + payload.len()` is the FIN
/// sequence number (occupies one number, as in TCP).
pub const FLAG_FIN: u8 = 0x02;

/// A parsed (or to-be-encoded) transport segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u64,
    /// Cumulative acknowledgement: next byte expected from the peer.
    pub ack: u64,
    /// Flag bits (`FLAG_*`).
    pub flags: u8,
    /// Advertised receive window in bytes.
    pub window: u32,
    /// Payload bytes — a [`WireBuf`] view, so segmentation slices the
    /// stream's send buffer and retransmission clones are O(1).
    pub payload: WireBuf,
}

/// Errors from [`Segment::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Payload length field disagrees with the buffer length.
    LengthMismatch {
        /// Payload length claimed by the header.
        claimed: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// Checksum verification failed (corrupted in transit).
    BadChecksum,
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Truncated => write!(f, "segment shorter than header"),
            SegmentError::LengthMismatch { claimed, actual } => {
                write!(
                    f,
                    "payload length mismatch: header says {claimed}, have {actual}"
                )
            }
            SegmentError::BadChecksum => write!(f, "segment checksum failed"),
        }
    }
}

impl SegmentError {
    /// Stable short label for per-reason rejection counters.
    pub fn reason(&self) -> &'static str {
        match self {
            SegmentError::Truncated => "truncated",
            SegmentError::LengthMismatch { .. } => "length_mismatch",
            SegmentError::BadChecksum => "bad_checksum",
        }
    }
}

impl std::error::Error for SegmentError {}

impl Segment {
    /// True if the FIN flag is set.
    pub fn is_fin(&self) -> bool {
        self.flags & FLAG_FIN != 0
    }

    /// The sequence number *after* this segment's payload (and FIN, if any):
    /// what a cumulative ACK for everything here would carry.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.payload.len() as u64 + u64::from(self.is_fin())
    }

    /// Encode to wire bytes: the payload is copied into the frame and
    /// checksummed in the same sweep (ILP-fused — one read and one write
    /// per payload byte, the transport's whole per-segment data cost).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.payload.len());
        let mut w = HeaderWriter::new(&mut out);
        w.put_u16(self.src_port)
            .put_u16(self.dst_port)
            .put_u64(self.seq)
            .put_u64(self.ack)
            .put_u8(self.flags)
            .put_u8(0)
            .put_u32(self.window)
            .put_u16(0) // checksum placeholder
            .put_u16(self.payload.len() as u16);
        out.resize(HEADER_BYTES + self.payload.len(), 0);
        let pck = ct_wire::fused::copy_and_checksum(&self.payload, &mut out[HEADER_BYTES..]);
        // Combine the header sum (checksum field still zero) with the
        // payload sum recovered from the fused kernel's complement; the
        // even header length keeps both on the same 16-bit word grid.
        let mut c = InternetChecksum::new();
        c.update(&out[..HEADER_BYTES]);
        c.update_u16(!pck);
        let ck = c.finish();
        out[26] = (ck >> 8) as u8;
        out[27] = (ck & 0xFF) as u8;
        out
    }

    /// Decode and verify a segment from a borrowed buffer (the payload is
    /// copied out). Callers that own the frame should prefer
    /// [`Segment::decode_frame`], which keeps the payload as a view.
    ///
    /// # Errors
    /// [`SegmentError`] for truncation, length mismatch, or checksum failure.
    pub fn decode(buf: &[u8]) -> Result<Segment, SegmentError> {
        Self::decode_impl(buf, None)
    }

    /// Decode and verify a segment from an owned frame, zero-copy: the
    /// payload is an O(1) [`WireBuf`] slice of `frame`.
    ///
    /// # Errors
    /// [`SegmentError`] for truncation, length mismatch, or checksum failure.
    pub fn decode_frame(frame: &WireBuf) -> Result<Segment, SegmentError> {
        Self::decode_impl(frame.as_slice(), Some(frame))
    }

    fn decode_impl(buf: &[u8], frame: Option<&WireBuf>) -> Result<Segment, SegmentError> {
        if buf.len() < HEADER_BYTES {
            return Err(SegmentError::Truncated);
        }
        // The checksum was sealed at a 16-bit-aligned offset, so an intact
        // frame's one's-complement sum folds to 0xFFFF and the whole-frame
        // checksum is zero — verification reads the frame once, with no
        // zeroed-field scratch copy.
        if internet_checksum(buf) != 0 {
            return Err(SegmentError::BadChecksum);
        }
        let mut r = HeaderReader::new(buf);
        // The header-length guard above makes these reads infallible, but
        // the decode path stays total anyway: network bytes must never be
        // able to reach a panic, whatever the guards upstream look like.
        let src_port = r.get_u16().map_err(|_| SegmentError::Truncated)?;
        let dst_port = r.get_u16().map_err(|_| SegmentError::Truncated)?;
        let seq = r.get_u64().map_err(|_| SegmentError::Truncated)?;
        let ack = r.get_u64().map_err(|_| SegmentError::Truncated)?;
        let flags = r.get_u8().map_err(|_| SegmentError::Truncated)?;
        let _rsvd = r.get_u8().map_err(|_| SegmentError::Truncated)?;
        let window = r.get_u32().map_err(|_| SegmentError::Truncated)?;
        let _ck = r.get_u16().map_err(|_| SegmentError::Truncated)?;
        let paylen = r.get_u16().map_err(|_| SegmentError::Truncated)? as usize;
        let payload = r.rest();
        if payload.len() != paylen {
            return Err(SegmentError::LengthMismatch {
                claimed: paylen,
                actual: payload.len(),
            });
        }
        let payload = match frame {
            // Zero-copy: the payload is the frame's tail, viewed.
            Some(f) => f.slice(HEADER_BYTES..),
            None => WireBuf::copy_from_slice(payload),
        };
        Ok(Segment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Segment {
        Segment {
            src_port: 1000,
            dst_port: 2000,
            seq: 0x1122334455667788,
            ack: 42,
            flags: FLAG_ACK,
            window: 65535,
            payload: b"hello transport".to_vec().into(),
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let wire = s.encode();
        assert_eq!(wire.len(), HEADER_BYTES + 15);
        assert_eq!(Segment::decode(&wire).unwrap(), s);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let s = Segment {
            payload: vec![].into(),
            ..sample()
        };
        assert_eq!(Segment::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn corruption_caught_anywhere() {
        let wire = sample().encode();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x10;
            assert!(
                matches!(
                    Segment::decode(&bad),
                    Err(SegmentError::BadChecksum) | Err(SegmentError::LengthMismatch { .. })
                ),
                "flip at byte {i} must be caught"
            );
        }
    }

    #[test]
    fn truncation_caught() {
        let wire = sample().encode();
        assert_eq!(Segment::decode(&wire[..10]), Err(SegmentError::Truncated));
        // Header intact but payload cut: checksum fails first (it covers payload).
        assert!(Segment::decode(&wire[..HEADER_BYTES + 3]).is_err());
    }

    #[test]
    fn seq_end_accounts_for_fin() {
        let mut s = sample();
        assert_eq!(s.seq_end(), s.seq + 15);
        s.flags |= FLAG_FIN;
        assert_eq!(s.seq_end(), s.seq + 16);
        assert!(s.is_fin());
    }

    #[test]
    fn max_payload_length_field() {
        let s = Segment {
            payload: vec![7u8; u16::MAX as usize].into(),
            ..sample()
        };
        let wire = s.encode();
        assert_eq!(Segment::decode(&wire).unwrap().payload.len(), 65535);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_roundtrip(
            src_port in any::<u16>(),
            dst_port in any::<u16>(),
            seq in any::<u64>(),
            ack in any::<u64>(),
            flags in 0u8..4,
            window in any::<u32>(),
            payload in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let s = Segment { src_port, dst_port, seq, ack, flags, window, payload: payload.into() };
            prop_assert_eq!(Segment::decode(&s.encode()).unwrap(), s);
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Segment::decode(&bytes);
        }

        #[test]
        fn prop_decode_frame_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // The zero-copy ingest path must be just as total as the
            // borrowed one: every input returns Ok or a typed SegmentError.
            let frame = WireBuf::from_vec(bytes.clone());
            let owned = Segment::decode_frame(&frame);
            let borrowed = Segment::decode(&bytes);
            match (&owned, &borrowed) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(a), Err(b)) => prop_assert_eq!(a.reason(), b.reason()),
                _ => prop_assert!(false, "ingest paths disagree: {owned:?} vs {borrowed:?}"),
            }
        }
    }
}
