//! The layered protocol stack — experiment E4's measurement subject.
//!
//! This is the "naive implementation of a layered suite" of §6: each unit of
//! information passes *sequentially* through the layer entities, and every
//! layer makes its own pass over the data with its own intermediate buffer:
//!
//! ```text
//! sender:   app record → [presentation encode] → [encrypt] → [record frame]
//!           → transport send (copy into send buffer, checksum on segment)
//! receiver: transport recv (checksum verify, reassembly copy, stream copy)
//!           → [record deframe] → [decrypt] → [presentation decode] → app
//! ```
//!
//! Each bracketed stage is a separate traversal of the data, timed with the
//! host's monotonic clock, so the harness can report what fraction of stack
//! overhead each layer accounts for — the paper's "97 % of the total
//! protocol stack overhead was attributable to the presentation conversion"
//! experiment, regenerated.
//!
//! Virtual (simulated) time governs protocol dynamics; *real* CPU time
//! measures manipulation cost. The two never mix: `LayerTimes` holds real
//! seconds, `TransferReport` holds simulated seconds.

use crate::driver::TransportPair;
use crate::stream::StreamConfig;
use ct_crypto::stream::XorStream;
use ct_netsim::fault::FaultConfig;
use ct_netsim::link::LinkConfig;
use ct_presentation::{ber, xdr, CodecError, PValue, TransferSyntax};
use std::time::Instant;

/// One application record to be carried through the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// An array of 32-bit integers — the conversion-intensive workload
    /// (the paper's "equivalent length array of 32 bit integers").
    U32Array(Vec<u32>),
    /// Raw bytes — the no-conversion baseline (the paper's "very long
    /// OCTET STRING").
    Octets(Vec<u8>),
}

impl Record {
    /// Application-meaningful size in bytes (what goodput is measured in).
    pub fn app_bytes(&self) -> usize {
        match self {
            Record::U32Array(v) => v.len() * 4,
            Record::Octets(b) => b.len(),
        }
    }
}

/// Real-CPU-time accounting per layer, in seconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerTimes {
    /// Presentation encode + decode.
    pub presentation: f64,
    /// Encryption + decryption.
    pub crypto: f64,
    /// Transport machine: poll / on_segment / send / recv, including the
    /// per-segment checksum and all stream copies.
    pub transport: f64,
}

impl LayerTimes {
    /// Sum of all layer times.
    pub fn total(&self) -> f64 {
        self.presentation + self.crypto + self.transport
    }

    /// Fraction of total stack CPU attributable to presentation, in `[0, 1]`.
    pub fn presentation_fraction(&self) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            0.0
        } else {
            self.presentation / t
        }
    }
}

/// Configuration of a layered stack run.
#[derive(Debug, Clone, Copy)]
pub struct StackConfig {
    /// Transfer syntax applied to `Record::U32Array` records
    /// (`Record::Octets` always passes through unconverted, like a BER
    /// OCTET STRING body).
    pub syntax: TransferSyntax,
    /// Apply the (seekable) stream cipher as a separate layer pass.
    pub encrypt: bool,
    /// Use the *generic* presentation path (value tree in the abstract
    /// syntax, per-element allocation — the shape of the paper's untuned
    /// ISODE toolkit) instead of the hand-tuned array fast path (the shape
    /// of the paper's "hand coded conversion routine"). Only meaningful
    /// for BER and XDR; Raw and LWTS always use their direct form.
    pub generic_presentation: bool,
    /// Transport configuration.
    pub transport: StreamConfig,
}

impl Default for StackConfig {
    fn default() -> Self {
        Self {
            syntax: TransferSyntax::Ber,
            encrypt: false,
            generic_presentation: true,
            transport: StreamConfig::default(),
        }
    }
}

/// Result of [`run_layered_transfer`].
#[derive(Debug, Clone)]
pub struct StackReport {
    /// True if every record arrived intact.
    pub complete: bool,
    /// Records delivered and verified.
    pub records_delivered: usize,
    /// Total application bytes moved.
    pub app_bytes: u64,
    /// Per-layer real CPU time.
    pub times: LayerTimes,
    /// Application-level throughput in Mb per *real* second of stack CPU —
    /// the paper's Mb/s metric for protocol processing cost.
    pub cpu_mbps: f64,
    /// Simulated wall-clock of the transfer.
    pub sim_elapsed: ct_netsim::time::SimDuration,
}

/// Record wire framing: 1 tag byte + 4-byte length + body.
const REC_U32: u8 = 1;
const REC_OCT: u8 = 2;

/// Presentation-encode an integer array per the configured path.
fn encode_u32s(cfg: &StackConfig, vals: &[u32]) -> Vec<u8> {
    if cfg.generic_presentation {
        match cfg.syntax {
            TransferSyntax::Ber => ber::encode(&PValue::u32_array(vals)),
            TransferSyntax::Xdr => xdr::encode(&PValue::u32_array(vals)),
            _ => cfg.syntax.encode_u32s(vals),
        }
    } else {
        cfg.syntax.encode_u32s(vals)
    }
}

/// Presentation-decode an integer array per the configured path.
fn decode_u32s(cfg: &StackConfig, body: &[u8]) -> Result<Vec<u32>, CodecError> {
    if cfg.generic_presentation {
        let value = match cfg.syntax {
            TransferSyntax::Ber => ber::decode(body)?,
            TransferSyntax::Xdr => xdr::decode(body)?,
            _ => return cfg.syntax.decode_u32s(body),
        };
        value.as_u32_array().ok_or(CodecError::IntegerOverflow)
    } else {
        cfg.syntax.decode_u32s(body)
    }
}

fn frame_record(tag: u8, body: &[u8], out: &mut Vec<u8>) {
    out.push(tag);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
}

/// Encryption key used by stack runs (both ends share it out of band).
const STACK_KEY: u64 = 0x0C1A_12C3;

/// Run `records` from sender to receiver through the full layered stack over
/// a simulated network, accounting per-layer CPU time.
pub fn run_layered_transfer(
    seed: u64,
    link: LinkConfig,
    faults: FaultConfig,
    cfg: StackConfig,
    records: &[Record],
) -> StackReport {
    run_layered_transfer_telemetry(seed, link, faults, cfg, records, None)
}

/// [`run_layered_transfer`] with observability: when `telemetry` is given,
/// the network counts frame events, every layer's data traversal is booked
/// in the data-touch ledger (`presentation/encode`, `crypto/xor`,
/// `transport/send_copy`, `transport/recv_copy`, `transport/deframe`,
/// `presentation/decode` — the layered stack's passes-per-byte, measured
/// rather than asserted), and both endpoints' [`StreamStats`] publish under
/// `stream.a.*` / `stream.b.*` when the run settles.
///
/// [`StreamStats`]: crate::stream::StreamStats
pub fn run_layered_transfer_telemetry(
    seed: u64,
    link: LinkConfig,
    faults: FaultConfig,
    cfg: StackConfig,
    records: &[Record],
    telemetry: Option<&ct_telemetry::Telemetry>,
) -> StackReport {
    let mut pair = TransportPair::new(seed, link, faults, cfg.transport);
    if let Some(tel) = telemetry {
        pair.net.attach_telemetry(tel.clone());
    }
    let ledger = telemetry.map(ct_telemetry::Telemetry::ledger);
    let cipher = XorStream::new(STACK_KEY);
    let mut times = LayerTimes::default();

    // ---------------- sender-side state ----------------
    let mut next_record = 0usize;
    let mut pending_wire: Vec<u8> = Vec::new();
    let mut pending_off = 0usize;
    let mut crypto_pos_tx = 0u64; // cipher stream position (stream-wide)
    let mut fin_queued = false;

    // ---------------- receiver-side state ----------------
    let mut rx_accum: Vec<u8> = Vec::new();
    let mut crypto_pos_rx = 0u64;
    let mut delivered: Vec<Record> = Vec::new();
    let mut buf = vec![0u8; 64 * 1024];

    let start = pair.net.now();
    let total_app_bytes: u64 = records.iter().map(|r| r.app_bytes() as u64).sum();
    let max_iters = 2_000_000 + total_app_bytes as usize / 8;
    let mut complete = false;

    for _ in 0..max_iters {
        // --- sender: encode the next record when the pipe needs bytes ---
        if pending_off == pending_wire.len() && next_record < records.len() {
            pending_wire.clear();
            pending_off = 0;
            let rec = &records[next_record];
            next_record += 1;
            // Layer pass 1: presentation encode (separate buffer).
            let t0 = Instant::now();
            let (tag, mut body) = match rec {
                Record::U32Array(vals) => (REC_U32, encode_u32s(&cfg, vals)),
                Record::Octets(bytes) => (REC_OCT, bytes.clone()),
            };
            times.presentation += t0.elapsed().as_secs_f64();
            if let Some(l) = ledger {
                // The octet clone is a traversal too — book both shapes.
                l.touch(
                    "presentation/encode",
                    rec.app_bytes() as u64,
                    body.len() as u64,
                );
            }
            // Layer pass 2: encryption (in place counts as a pass).
            if cfg.encrypt {
                let t1 = Instant::now();
                match ledger {
                    Some(l) => cipher.apply_in_place_ledgered(crypto_pos_tx, &mut body, l),
                    None => cipher.apply_in_place(crypto_pos_tx, &mut body),
                }
                crypto_pos_tx += body.len() as u64;
                times.crypto += t1.elapsed().as_secs_f64();
            }
            frame_record(tag, &body, &mut pending_wire);
        }
        // Layer pass 3: transport send (copy into the send buffer).
        if pending_off < pending_wire.len() {
            let t2 = Instant::now();
            let n = pair.a.send(&pending_wire[pending_off..]);
            pending_off += n;
            times.transport += t2.elapsed().as_secs_f64();
            if let Some(l) = ledger {
                // Copy into the transport send buffer.
                l.touch("transport/send_copy", n as u64, n as u64);
            }
        }
        if next_record == records.len() && pending_off == pending_wire.len() && !fin_queued {
            pair.a.finish();
            fin_queued = true;
        }

        // --- network + transport machinery ---
        // Only the protocol endpoints' work (segment encode/decode,
        // checksums, stream copies) counts as transport CPU; the simulator's
        // event processing is the "network", which the paper's stack
        // accounting of course excludes.
        let progressed = {
            let now = pair.net.now();
            let t3 = Instant::now();
            let frames_a = pair.a.poll(now);
            let frames_b = pair.b.poll(now);
            times.transport += t3.elapsed().as_secs_f64();
            let mut moved = !frames_a.is_empty() || !frames_b.is_empty();
            for f in frames_a {
                let _ = pair.net.send(pair.node_a, pair.node_b, f);
            }
            for f in frames_b {
                let _ = pair.net.send(pair.node_b, pair.node_a, f);
            }
            while let Some(frame) = pair.net.recv(pair.node_b) {
                moved = true;
                let t = Instant::now();
                // Owned frame → zero-copy ingest (out-of-order segments are
                // buffered as views). The layered stack's booked passes are
                // its explicit per-layer copies, which are unchanged.
                pair.b.on_frame(pair.net.now(), frame.payload.into());
                times.transport += t.elapsed().as_secs_f64();
            }
            while let Some(frame) = pair.net.recv(pair.node_a) {
                moved = true;
                let t = Instant::now();
                pair.a.on_frame(pair.net.now(), frame.payload.into());
                times.transport += t.elapsed().as_secs_f64();
            }
            if !pair.net.is_idle() {
                pair.net.step();
                true
            } else if moved {
                true
            } else {
                let next = match (pair.a.next_timeout(), pair.b.next_timeout()) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, y) => x.or(y),
                };
                match next {
                    Some(t) if t > now => {
                        pair.net.advance(t.saturating_since(now));
                        true
                    }
                    Some(_) => true,
                    None => false,
                }
            }
        };
        let n_read = {
            let t3 = Instant::now();
            let mut total = 0usize;
            loop {
                let n = pair.b.recv(&mut buf);
                if n == 0 {
                    break;
                }
                rx_accum.extend_from_slice(&buf[..n]);
                total += n;
            }
            times.transport += t3.elapsed().as_secs_f64();
            if let Some(l) = ledger {
                if total > 0 {
                    // Stream copy out of the transport plus the reassembly
                    // accumulation into `rx_accum`.
                    l.touch("transport/recv_copy", total as u64, total as u64);
                }
            }
            total
        };

        // --- receiver: deframe, decrypt, decode complete records ---
        if n_read > 0 {
            let mut cursor = 0usize;
            while rx_accum.len() - cursor >= 5 {
                let tag = rx_accum[cursor];
                let len = u32::from_be_bytes([
                    rx_accum[cursor + 1],
                    rx_accum[cursor + 2],
                    rx_accum[cursor + 3],
                    rx_accum[cursor + 4],
                ]) as usize;
                if rx_accum.len() - cursor - 5 < len {
                    break;
                }
                let mut body = rx_accum[cursor + 5..cursor + 5 + len].to_vec();
                cursor += 5 + len;
                if let Some(l) = ledger {
                    l.touch("transport/deframe", body.len() as u64, body.len() as u64);
                }
                if cfg.encrypt {
                    let t4 = Instant::now();
                    match ledger {
                        Some(l) => cipher.apply_in_place_ledgered(crypto_pos_rx, &mut body, l),
                        None => cipher.apply_in_place(crypto_pos_rx, &mut body),
                    }
                    crypto_pos_rx += body.len() as u64;
                    times.crypto += t4.elapsed().as_secs_f64();
                }
                let t5 = Instant::now();
                let rec = match tag {
                    REC_U32 => decode_u32s(&cfg, &body).map(Record::U32Array),
                    REC_OCT => Ok(Record::Octets(body)),
                    _ => {
                        // Framing desync: unrecoverable in this harness.
                        break;
                    }
                };
                times.presentation += t5.elapsed().as_secs_f64();
                match rec {
                    Ok(r) => {
                        if let Some(l) = ledger {
                            l.touch("presentation/decode", len as u64, r.app_bytes() as u64);
                        }
                        delivered.push(r);
                    }
                    Err(_) => break,
                }
            }
            rx_accum.drain(..cursor);
        }

        if fin_queued
            && pair.a.send_complete()
            && pair.b.peer_finished()
            && delivered.len() == records.len()
        {
            complete = true;
            break;
        }
        if !progressed && n_read == 0 && pending_off == pending_wire.len() {
            // Drained and stuck.
            if delivered.len() == records.len() {
                complete = true;
            }
            break;
        }
    }

    // Verify content, not just count.
    let intact = complete && delivered == records;
    let app_bytes: u64 = delivered.iter().map(|r| r.app_bytes() as u64).sum();
    if let Some(tel) = telemetry {
        let mut reg = tel.metrics_mut();
        pair.a.stats.publish(&mut reg, "stream.a");
        pair.b.stats.publish(&mut reg, "stream.b");
        reg.counter_set("stack.records_delivered", delivered.len() as u64);
        reg.counter_set("stack.app_bytes", app_bytes);
        drop(reg);
        tel.ledger().deliver(app_bytes);
    }
    let total_cpu = times.total();
    StackReport {
        complete: intact,
        records_delivered: delivered.len(),
        app_bytes,
        times,
        cpu_mbps: ct_wire::mbps(app_bytes, total_cpu),
        sim_elapsed: pair.net.now().saturating_since(start),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u32_records(n_records: usize, ints_each: usize) -> Vec<Record> {
        (0..n_records)
            .map(|r| {
                Record::U32Array(
                    (0..ints_each)
                        .map(|i| (r * 31 + i) as u32 ^ 0x5A5A)
                        .collect(),
                )
            })
            .collect()
    }

    fn octet_records(n_records: usize, bytes_each: usize) -> Vec<Record> {
        (0..n_records)
            .map(|r| Record::Octets((0..bytes_each).map(|i| (r + i) as u8).collect()))
            .collect()
    }

    #[test]
    fn ber_records_roundtrip() {
        let records = u32_records(10, 500);
        let rep = run_layered_transfer(
            1,
            LinkConfig::lan(),
            FaultConfig::none(),
            StackConfig::default(),
            &records,
        );
        assert!(rep.complete, "delivered {}/10", rep.records_delivered);
        assert_eq!(rep.app_bytes, 10 * 500 * 4);
        assert!(rep.times.presentation > 0.0);
    }

    #[test]
    fn octets_skip_presentation_cost() {
        let records = octet_records(10, 2000);
        let rep = run_layered_transfer(
            2,
            LinkConfig::lan(),
            FaultConfig::none(),
            StackConfig::default(),
            &records,
        );
        assert!(rep.complete);
        // Octets still pass through the (timed) presentation stage, but the
        // work there is a clone, far cheaper than BER conversion.
        let conv = run_layered_transfer(
            2,
            LinkConfig::lan(),
            FaultConfig::none(),
            StackConfig::default(),
            &u32_records(10, 500),
        );
        assert!(conv.complete);
        assert!(
            conv.times.presentation > rep.times.presentation,
            "BER conversion must cost more than passthrough"
        );
    }

    #[test]
    fn encryption_layer_optional_and_correct() {
        let records = u32_records(5, 300);
        let cfg = StackConfig {
            encrypt: true,
            ..StackConfig::default()
        };
        let rep = run_layered_transfer(3, LinkConfig::lan(), FaultConfig::none(), cfg, &records);
        assert!(rep.complete);
        assert!(rep.times.crypto > 0.0);
    }

    #[test]
    fn survives_loss() {
        let records = u32_records(8, 400);
        let rep = run_layered_transfer(
            4,
            LinkConfig::lan(),
            FaultConfig::loss(0.03),
            StackConfig {
                encrypt: true,
                ..StackConfig::default()
            },
            &records,
        );
        assert!(rep.complete, "delivered {}/8", rep.records_delivered);
    }

    #[test]
    fn all_syntaxes_work_through_stack() {
        for syntax in [
            TransferSyntax::Raw,
            TransferSyntax::Lwts,
            TransferSyntax::Xdr,
            TransferSyntax::Ber,
        ] {
            let records = u32_records(4, 250);
            let rep = run_layered_transfer(
                5,
                LinkConfig::lan(),
                FaultConfig::none(),
                StackConfig {
                    syntax,
                    ..StackConfig::default()
                },
                &records,
            );
            assert!(rep.complete, "{}", syntax.name());
        }
    }

    #[test]
    fn empty_record_list() {
        let rep = run_layered_transfer(
            6,
            LinkConfig::lan(),
            FaultConfig::none(),
            StackConfig::default(),
            &[],
        );
        assert!(rep.complete);
        assert_eq!(rep.app_bytes, 0);
    }

    #[test]
    fn telemetry_ledger_books_layer_passes() {
        let tel = ct_telemetry::Telemetry::new();
        let records = u32_records(6, 400);
        let rep = run_layered_transfer_telemetry(
            9,
            LinkConfig::lan(),
            FaultConfig::none(),
            StackConfig {
                encrypt: true,
                ..StackConfig::default()
            },
            &records,
            Some(&tel),
        );
        assert!(rep.complete);
        let ledger = tel.ledger();
        assert!(
            ledger.passes_per_delivered_byte() > 2.0,
            "a layered stack must traverse delivered data repeatedly: {}",
            ledger.passes_per_delivered_byte()
        );
        let stages: Vec<_> = ledger.stages().iter().map(|s| s.stage).collect();
        for want in [
            "presentation/encode",
            "crypto/xor",
            "transport/send_copy",
            "transport/recv_copy",
            "transport/deframe",
            "presentation/decode",
        ] {
            assert!(stages.contains(&want), "{want} missing from {stages:?}");
        }
        assert!(tel.metrics().counter("stream.a.segments_out") > 0);
        assert_eq!(tel.metrics().counter("stack.records_delivered"), 6);
    }

    #[test]
    fn presentation_fraction_math() {
        let t = LayerTimes {
            presentation: 0.97,
            crypto: 0.0,
            transport: 0.03,
        };
        assert!((t.presentation_fraction() - 0.97).abs() < 1e-12);
        assert_eq!(LayerTimes::default().presentation_fraction(), 0.0);
    }
}
