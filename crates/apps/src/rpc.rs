//! Remote procedure call over ALF.
//!
//! §6: "the data in the ADU be separated into different values which are
//! stored in different variables of some program. This is the general
//! paradigm of the Remote Procedure Call." Arguments are marshalled
//! through the presentation layer (XDR here), each call is one
//! [`AduName::Rpc`]-named ADU, and **calls complete out of order** — a lost
//! or slow call never stalls the calls behind it.
//!
//! The demo service implements three procedures over `u32` arrays so that
//! marshalling is the paper's benchmark workload.

use alf_core::adu::{Adu, AduName};
use ct_presentation::{xdr, CodecError};
use std::collections::BTreeMap;

/// Procedure identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proc {
    /// Sum of the argument array (returns a 1-element array).
    Sum,
    /// Echo the argument array.
    Echo,
    /// Element-wise square of the argument array.
    Square,
}

impl Proc {
    fn code(self) -> u32 {
        match self {
            Proc::Sum => 1,
            Proc::Echo => 2,
            Proc::Square => 3,
        }
    }

    fn from_code(code: u32) -> Option<Proc> {
        match code {
            1 => Some(Proc::Sum),
            2 => Some(Proc::Echo),
            3 => Some(Proc::Square),
            _ => None,
        }
    }

    /// Execute the procedure on its argument.
    pub fn execute(self, args: &[u32]) -> Vec<u32> {
        match self {
            Proc::Sum => vec![args.iter().fold(0u32, |a, &b| a.wrapping_add(b))],
            Proc::Echo => args.to_vec(),
            Proc::Square => args.iter().map(|&v| v.wrapping_mul(v)).collect(),
        }
    }
}

/// ADU `part` number used for requests and responses.
const PART_REQUEST: u16 = 0;
/// Response part.
const PART_RESPONSE: u16 = 1;

/// Errors from RPC marshalling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// Presentation decode failed.
    Codec(CodecError),
    /// Unknown procedure code.
    UnknownProc(u32),
    /// ADU name is not in the RPC name-space or has the wrong part.
    BadName,
}

impl From<CodecError> for RpcError {
    fn from(e: CodecError) -> Self {
        RpcError::Codec(e)
    }
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Codec(e) => write!(f, "presentation error: {e}"),
            RpcError::UnknownProc(c) => write!(f, "unknown procedure {c}"),
            RpcError::BadName => write!(f, "ADU is not an RPC request/response"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Marshal a call into a request ADU: `[proc code][args]` in XDR.
pub fn marshal_request(call_id: u32, proc: Proc, args: &[u32]) -> Adu {
    let mut body = Vec::with_capacity(4 + 4 + args.len() * 4);
    xdr::put_u32(&mut body, proc.code());
    body.extend_from_slice(&xdr::encode_u32_array(args));
    Adu::new(
        AduName::Rpc {
            call: call_id,
            part: PART_REQUEST,
        },
        body,
    )
}

/// Unmarshal a request ADU into `(call_id, proc, args)`.
///
/// # Errors
/// [`RpcError`] on foreign names, unknown procedures, or codec failures.
pub fn unmarshal_request(adu: &Adu) -> Result<(u32, Proc, Vec<u32>), RpcError> {
    let AduName::Rpc { call, part } = adu.name else {
        return Err(RpcError::BadName);
    };
    if part != PART_REQUEST {
        return Err(RpcError::BadName);
    }
    let mut r = xdr::XdrReader::new(&adu.payload);
    let code = r.u32()?;
    let proc = Proc::from_code(code).ok_or(RpcError::UnknownProc(code))?;
    // The rest is the argument array; re-slice and decode.
    let consumed = adu.payload.len() - r.remaining();
    let args = xdr::decode_u32_array(&adu.payload[consumed..])?;
    Ok((call, proc, args))
}

/// Marshal a response ADU.
pub fn marshal_response(call_id: u32, result: &[u32]) -> Adu {
    Adu::new(
        AduName::Rpc {
            call: call_id,
            part: PART_RESPONSE,
        },
        xdr::encode_u32_array(result),
    )
}

/// Unmarshal a response ADU into `(call_id, result)`.
///
/// # Errors
/// [`RpcError`] on foreign names or codec failures.
pub fn unmarshal_response(adu: &Adu) -> Result<(u32, Vec<u32>), RpcError> {
    let AduName::Rpc { call, part } = adu.name else {
        return Err(RpcError::BadName);
    };
    if part != PART_RESPONSE {
        return Err(RpcError::BadName);
    }
    Ok((call, xdr::decode_u32_array(&adu.payload)?))
}

/// The server side: executes request ADUs, in whatever order they arrive.
#[derive(Debug, Default)]
pub struct RpcServer {
    /// Calls served.
    pub calls_served: u64,
    /// Malformed requests rejected.
    pub errors: u64,
}

impl RpcServer {
    /// Create a server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle one request ADU, producing a response ADU.
    pub fn handle(&mut self, adu: &Adu) -> Result<Adu, RpcError> {
        match unmarshal_request(adu) {
            Ok((call, proc, args)) => {
                self.calls_served += 1;
                Ok(marshal_response(call, &proc.execute(&args)))
            }
            Err(e) => {
                self.errors += 1;
                Err(e)
            }
        }
    }
}

/// The client side: issues calls, matches out-of-order responses.
#[derive(Debug, Default)]
pub struct RpcClient {
    next_call: u32,
    outstanding: BTreeMap<u32, Proc>,
    completed: Vec<(u32, Proc, Vec<u32>)>,
    /// Responses that matched no outstanding call.
    pub orphan_responses: u64,
}

impl RpcClient {
    /// Create a client.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issue a call; returns the request ADU to transmit.
    pub fn call(&mut self, proc: Proc, args: &[u32]) -> Adu {
        let id = self.next_call;
        self.next_call += 1;
        self.outstanding.insert(id, proc);
        marshal_request(id, proc, args)
    }

    /// Ingest a response ADU.
    ///
    /// # Errors
    /// [`RpcError`] if the ADU is not a well-formed response.
    pub fn on_response(&mut self, adu: &Adu) -> Result<(), RpcError> {
        let (call, result) = unmarshal_response(adu)?;
        match self.outstanding.remove(&call) {
            Some(proc) => self.completed.push((call, proc, result)),
            None => self.orphan_responses += 1,
        }
        Ok(())
    }

    /// Completed calls, in completion (arrival) order: `(id, proc, result)`.
    pub fn take_completed(&mut self) -> Vec<(u32, Proc, Vec<u32>)> {
        std::mem::take(&mut self.completed)
    }

    /// Calls still awaiting a response.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marshal_roundtrip() {
        let adu = marshal_request(7, Proc::Square, &[1, 2, 3]);
        let (call, proc, args) = unmarshal_request(&adu).unwrap();
        assert_eq!(call, 7);
        assert_eq!(proc, Proc::Square);
        assert_eq!(args, vec![1, 2, 3]);
    }

    #[test]
    fn procedures_compute() {
        assert_eq!(Proc::Sum.execute(&[1, 2, 3]), vec![6]);
        assert_eq!(Proc::Echo.execute(&[9, 8]), vec![9, 8]);
        assert_eq!(Proc::Square.execute(&[2, 3]), vec![4, 9]);
        assert_eq!(Proc::Sum.execute(&[u32::MAX, 1]), vec![0], "wrapping");
    }

    #[test]
    fn end_to_end_call() {
        let mut client = RpcClient::new();
        let mut server = RpcServer::new();
        let req = client.call(Proc::Sum, &[10, 20, 30]);
        let resp = server.handle(&req).unwrap();
        client.on_response(&resp).unwrap();
        let done = client.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].2, vec![60]);
        assert_eq!(client.outstanding(), 0);
        assert_eq!(server.calls_served, 1);
    }

    #[test]
    fn out_of_order_responses_complete_out_of_order() {
        let mut client = RpcClient::new();
        let mut server = RpcServer::new();
        let r0 = client.call(Proc::Echo, &[1]);
        let r1 = client.call(Proc::Echo, &[2]);
        let r2 = client.call(Proc::Echo, &[3]);
        // Server answers 2, 0, 1 — client completes in that order, never
        // blocking call 2 on the others.
        for req in [&r2, &r0, &r1] {
            let resp = server.handle(req).unwrap();
            client.on_response(&resp).unwrap();
        }
        let done = client.take_completed();
        assert_eq!(
            done.iter().map(|(id, _, _)| *id).collect::<Vec<_>>(),
            vec![2, 0, 1]
        );
        assert_eq!(done[0].2, vec![3]);
    }

    #[test]
    fn lost_call_reported_by_call_id_not_bytes() {
        let mut client = RpcClient::new();
        let _lost = client.call(Proc::Sum, &[1, 2]);
        let kept = client.call(Proc::Sum, &[3, 4]);
        let mut server = RpcServer::new();
        let resp = server.handle(&kept).unwrap();
        client.on_response(&resp).unwrap();
        // The application can see exactly which call is outstanding.
        assert_eq!(client.outstanding(), 1);
    }

    #[test]
    fn unknown_proc_rejected() {
        let mut body = Vec::new();
        xdr::put_u32(&mut body, 99);
        body.extend_from_slice(&xdr::encode_u32_array(&[]));
        let adu = Adu::new(AduName::Rpc { call: 0, part: 0 }, body);
        assert_eq!(unmarshal_request(&adu), Err(RpcError::UnknownProc(99)));
    }

    #[test]
    fn wrong_namespace_rejected() {
        let adu = Adu::new(AduName::Seq { index: 0 }, vec![]);
        assert_eq!(unmarshal_request(&adu), Err(RpcError::BadName));
        assert!(unmarshal_response(&adu).is_err());
    }

    #[test]
    fn response_part_mismatch_rejected() {
        let req = marshal_request(1, Proc::Echo, &[5]);
        assert!(unmarshal_response(&req).is_err());
        let resp = marshal_response(1, &[5]);
        assert!(unmarshal_request(&resp).is_err());
    }

    #[test]
    fn orphan_response_counted() {
        let mut client = RpcClient::new();
        let resp = marshal_response(42, &[1]);
        client.on_response(&resp).unwrap();
        assert_eq!(client.orphan_responses, 1);
        assert!(client.take_completed().is_empty());
    }

    #[test]
    fn corrupt_payload_is_codec_error() {
        let adu = Adu::new(AduName::Rpc { call: 1, part: 0 }, vec![0, 0]);
        assert!(matches!(unmarshal_request(&adu), Err(RpcError::Codec(_))));
        let mut server = RpcServer::new();
        assert!(server.handle(&adu).is_err());
        assert_eq!(server.errors, 1);
    }
}
