//! Real-time video over ALF: playout deadlines instead of retransmission.
//!
//! §5: "each ADU must be identified with its location, both in space (where
//! on the screen it goes) and in time (which video frame it is a part of)."
//! And on loss: "the application to accept less than perfect delivery and
//! continue unchecked. This will work for real-time delivery of video."
//!
//! A frame is `slots_per_frame` tiles; each tile is one
//! [`AduName::Media`]-named ADU. The receiver plays frame `f` at
//! `start + f * frame_interval + playout_delay`; whatever tiles have
//! arrived by then are rendered, missing tiles are concealed (counted), and
//! tiles arriving after their frame's deadline are late (counted, dropped).

use alf_core::adu::{Adu, AduName};
use ct_netsim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Generates tile ADUs for a synthetic video stream.
#[derive(Debug)]
pub struct VideoSource {
    frames: u32,
    slots_per_frame: u16,
    tile_bytes: usize,
}

impl VideoSource {
    /// A stream of `frames` frames, each of `slots_per_frame` tiles of
    /// `tile_bytes` bytes.
    pub fn new(frames: u32, slots_per_frame: u16, tile_bytes: usize) -> Self {
        Self {
            frames,
            slots_per_frame,
            tile_bytes,
        }
    }

    /// Total tiles in the stream.
    pub fn tile_count(&self) -> usize {
        self.frames as usize * self.slots_per_frame as usize
    }

    /// Deterministic tile payload (depends on frame and slot, so delivery
    /// can be verified).
    pub fn tile_payload(&self, frame: u32, slot: u16) -> Vec<u8> {
        (0..self.tile_bytes)
            .map(|i| (frame as usize * 31 + slot as usize * 7 + i) as u8)
            .collect()
    }

    /// All tiles of one frame.
    pub fn frame_adus(&self, frame: u32) -> Vec<Adu> {
        (0..self.slots_per_frame)
            .map(|slot| {
                Adu::new(
                    AduName::Media { frame, slot },
                    self.tile_payload(frame, slot),
                )
            })
            .collect()
    }

    /// Number of frames.
    pub fn frames(&self) -> u32 {
        self.frames
    }

    /// Tiles per frame.
    pub fn slots_per_frame(&self) -> u16 {
        self.slots_per_frame
    }
}

/// Per-run playout statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlayoutStats {
    /// Frames rendered with every tile present.
    pub frames_perfect: u64,
    /// Frames rendered with at least one concealed tile.
    pub frames_partial: u64,
    /// Tiles rendered.
    pub tiles_rendered: u64,
    /// Tiles concealed (missing at the deadline).
    pub tiles_concealed: u64,
    /// Tiles that arrived after their frame had already played.
    pub tiles_late: u64,
}

impl PlayoutStats {
    /// Fraction of tiles rendered on time, in [0, 1].
    pub fn render_ratio(&self) -> f64 {
        let total = self.tiles_rendered + self.tiles_concealed;
        if total == 0 {
            return 1.0;
        }
        self.tiles_rendered as f64 / total as f64
    }
}

/// A rendered frame: `(frame index, tile payloads, concealed-tile count)`.
pub type RenderedFrame = (u32, Vec<Option<Vec<u8>>>, u16);

/// The playout buffer: collects tiles, renders frames at their deadlines.
#[derive(Debug)]
pub struct PlayoutBuffer {
    slots_per_frame: u16,
    start: SimTime,
    frame_interval: SimDuration,
    playout_delay: SimDuration,
    /// Arrived tiles per pending frame.
    pending: BTreeMap<u32, Vec<Option<Vec<u8>>>>,
    next_frame: u32,
    total_frames: u32,
    /// Statistics.
    pub stats: PlayoutStats,
}

impl PlayoutBuffer {
    /// Create a playout buffer. Frame `f`'s deadline is
    /// `start + f * frame_interval + playout_delay`.
    pub fn new(
        slots_per_frame: u16,
        total_frames: u32,
        start: SimTime,
        frame_interval: SimDuration,
        playout_delay: SimDuration,
    ) -> Self {
        Self {
            slots_per_frame,
            start,
            frame_interval,
            playout_delay,
            pending: BTreeMap::new(),
            next_frame: 0,
            total_frames,
            stats: PlayoutStats::default(),
        }
    }

    /// Deadline of frame `f`.
    pub fn deadline(&self, frame: u32) -> SimTime {
        self.start + self.frame_interval.saturating_mul(frame as u64) + self.playout_delay
    }

    /// Offer an arrived tile ADU. Tiles for frames already played are late.
    /// Tiles with foreign names are ignored (returns false).
    pub fn on_adu(&mut self, now: SimTime, adu: Adu) -> bool {
        let AduName::Media { frame, slot } = adu.name else {
            return false;
        };
        if frame < self.next_frame || now > self.deadline(frame) {
            self.stats.tiles_late += 1;
            return true;
        }
        let slots = self.slots_per_frame as usize;
        let entry = self
            .pending
            .entry(frame)
            .or_insert_with(|| vec![None; slots]);
        if (slot as usize) < slots {
            entry[slot as usize] = Some(adu.payload.to_vec());
        }
        true
    }

    /// Advance the playout clock: render every frame whose deadline has
    /// passed. Returns the frames rendered as `(frame, tiles, concealed)`.
    pub fn advance(&mut self, now: SimTime) -> Vec<RenderedFrame> {
        let mut rendered = Vec::new();
        while self.next_frame < self.total_frames && now >= self.deadline(self.next_frame) {
            let frame = self.next_frame;
            self.next_frame += 1;
            let tiles = self
                .pending
                .remove(&frame)
                .unwrap_or_else(|| vec![None; self.slots_per_frame as usize]);
            let present = tiles.iter().filter(|t| t.is_some()).count() as u64;
            let concealed = self.slots_per_frame as u64 - present;
            self.stats.tiles_rendered += present;
            self.stats.tiles_concealed += concealed;
            if concealed == 0 {
                self.stats.frames_perfect += 1;
            } else {
                self.stats.frames_partial += 1;
            }
            rendered.push((frame, tiles, concealed as u16));
        }
        rendered
    }

    /// True once every frame has played.
    pub fn finished(&self) -> bool {
        self.next_frame >= self.total_frames
    }

    /// The next frame awaiting playout.
    pub fn next_frame(&self) -> u32 {
        self.next_frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer(frames: u32) -> PlayoutBuffer {
        PlayoutBuffer::new(
            4,
            frames,
            SimTime::ZERO,
            SimDuration::from_millis(33),
            SimDuration::from_millis(100),
        )
    }

    fn src() -> VideoSource {
        VideoSource::new(10, 4, 256)
    }

    #[test]
    fn perfect_delivery_perfect_playout() {
        let source = src();
        let mut buf = buffer(10);
        for frame in 0..10 {
            for adu in source.frame_adus(frame) {
                assert!(buf.on_adu(SimTime::from_millis(frame as u64 * 33 + 5), adu));
            }
        }
        let rendered = buf.advance(SimTime::from_secs(10));
        assert_eq!(rendered.len(), 10);
        assert!(buf.finished());
        assert_eq!(buf.stats.frames_perfect, 10);
        assert_eq!(buf.stats.frames_partial, 0);
        assert_eq!(buf.stats.tiles_rendered, 40);
        assert!((buf.stats.render_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_tile_concealed_not_blocking() {
        let source = src();
        let mut buf = buffer(2);
        let mut f0 = source.frame_adus(0);
        f0.remove(2); // tile (0,2) lost
        for adu in f0 {
            buf.on_adu(SimTime::from_millis(1), adu);
        }
        for adu in source.frame_adus(1) {
            buf.on_adu(SimTime::from_millis(34), adu);
        }
        let rendered = buf.advance(SimTime::from_millis(200));
        assert_eq!(rendered.len(), 2);
        let (frame0, tiles0, concealed0) = &rendered[0];
        assert_eq!(*frame0, 0);
        assert_eq!(*concealed0, 1);
        assert!(tiles0[2].is_none());
        assert_eq!(buf.stats.frames_partial, 1);
        assert_eq!(buf.stats.frames_perfect, 1);
        assert_eq!(buf.stats.tiles_concealed, 1);
    }

    #[test]
    fn late_tile_counted_and_dropped() {
        let source = src();
        let mut buf = buffer(1);
        // Frame 0's deadline is 100 ms; the tile shows up at 150 ms.
        buf.advance(SimTime::from_millis(120)); // frame 0 plays (all concealed)
        let adu = source.frame_adus(0).remove(0);
        buf.on_adu(SimTime::from_millis(150), adu);
        assert_eq!(buf.stats.tiles_late, 1);
        assert_eq!(buf.stats.tiles_concealed, 4);
    }

    #[test]
    fn tile_arriving_past_deadline_is_late_even_if_frame_pending() {
        let source = src();
        let mut buf = buffer(2);
        // Frame 0 deadline = 100ms. Tile arrives at 101ms, frame not yet
        // advanced: still late.
        let adu = source.frame_adus(0).remove(0);
        buf.on_adu(SimTime::from_millis(101), adu);
        assert_eq!(buf.stats.tiles_late, 1);
    }

    #[test]
    fn foreign_names_ignored() {
        let mut buf = buffer(1);
        let adu = Adu::new(AduName::Seq { index: 1 }, vec![1]);
        assert!(!buf.on_adu(SimTime::ZERO, adu));
    }

    #[test]
    fn render_ratio_degrades_with_loss() {
        let source = VideoSource::new(30, 8, 128);
        let mut buf = PlayoutBuffer::new(
            8,
            30,
            SimTime::ZERO,
            SimDuration::from_millis(33),
            SimDuration::from_millis(66),
        );
        // Drop every 5th tile.
        let mut k = 0usize;
        for frame in 0..30 {
            for adu in source.frame_adus(frame) {
                k += 1;
                if k.is_multiple_of(5) {
                    continue;
                }
                buf.on_adu(SimTime::from_millis(frame as u64 * 33 + 10), adu);
            }
        }
        buf.advance(SimTime::from_secs(5));
        assert!(buf.finished());
        let ratio = buf.stats.render_ratio();
        assert!((ratio - 0.8).abs() < 0.02, "ratio {ratio}");
        assert!(buf.stats.frames_partial > 0);
    }

    #[test]
    fn deadline_math() {
        let buf = buffer(100);
        assert_eq!(buf.deadline(0), SimTime::from_millis(100));
        assert_eq!(buf.deadline(3), SimTime::from_millis(199));
    }

    #[test]
    fn source_payload_deterministic_and_distinct() {
        let s = src();
        assert_eq!(s.tile_payload(1, 2), s.tile_payload(1, 2));
        assert_ne!(s.tile_payload(1, 2), s.tile_payload(1, 3));
        assert_ne!(s.tile_payload(1, 2), s.tile_payload(2, 2));
        assert_eq!(s.tile_count(), 40);
    }
}
