//! # ct-apps — application substrates over ALF
//!
//! The applications the paper reasons about, built on `alf-core`. Each one
//! exercises a different ADU name-space and a different answer to "what do
//! we do about loss":
//!
//! * [`filetransfer`] — bulk transfer where each ADU carries its placement
//!   in the **receiver's** file, so out-of-order ADUs land directly at
//!   their final location (§5's file-transfer example).
//! * [`video`] — real-time media: ADUs named by (frame, slot), a playout
//!   deadline instead of retransmission, loss tolerated and *concealed*
//!   (§5's "accept less than perfect delivery and continue").
//! * [`rpc`] — remote procedure call: arguments marshalled through the
//!   presentation layer and scattered into "different variables of some
//!   program" on arrival (§6's general paradigm).
//! * [`parallel`] — the §7 parallel-processor example: ADUs self-route to
//!   processor shards, against a byte-stream + serial-resplit baseline.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod filetransfer;
pub mod parallel;
pub mod rpc;
pub mod video;
