//! The §7 parallel-processor example: ADUs self-route to processor shards.
//!
//! "The solution seems to be to separate the network into several parts,
//! each of which delivers part of the data to part of the processor. But
//! how is the data to be dispatched to the correct part? If the data is
//! sent to the parallel processor using a traditional protocol such as TCP,
//! there is no way the transport can understand the structure of the
//! incoming data. However, if the data is organized into ADUs, each ADU
//! will contain enough information to control its own delivery."
//!
//! Two ingest paths over the same workload:
//!
//! * [`ShardedSink::ingest_adu`] — the ALF path: the [`AduName::Shard`]
//!   name routes each unit straight to its shard; no shared hot spot.
//! * [`StreamResplitter`] — the byte-stream baseline: everything funnels
//!   through one serial parser which must read each record header to learn
//!   its destination, then copy the body onward — the "one hot spot which
//!   must run at the aggregate speed of the total processor".
//!
//! Experiment X5 measures the aggregate ingest rate of both as the shard
//! count grows.

use alf_core::adu::{Adu, AduName};
use ct_wire::checksum::InternetChecksum;

/// Errors from shard ingestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// The ADU's name is not in the shard name-space.
    WrongNameSpace,
    /// The named shard does not exist.
    NoSuchShard {
        /// Shard named by the ADU.
        shard: u16,
        /// Shards available.
        have: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::WrongNameSpace => write!(f, "ADU name is not a shard address"),
            ShardError::NoSuchShard { shard, have } => {
                write!(f, "shard {shard} does not exist ({have} shards)")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// One processor shard: consumes its units independently. "Consuming" here
/// is a checksum fold over the data — a stand-in for per-shard compute that
/// forces a real read of every byte.
#[derive(Debug, Default)]
pub struct Shard {
    /// Units ingested.
    pub units: u64,
    /// Bytes ingested.
    pub bytes: u64,
    /// Folded checksum of everything ingested (order-insensitive check
    /// value so out-of-order ingest still verifies).
    pub digest: u64,
}

impl Shard {
    /// Ingest one unit into this shard (reads every byte).
    pub fn consume(&mut self, index: u32, data: &[u8]) {
        self.units += 1;
        self.bytes += data.len() as u64;
        let mut ck = InternetChecksum::new();
        ck.update(data);
        // Mix the unit index in so placement errors change the digest.
        self.digest = self
            .digest
            .wrapping_add(u64::from(ck.finish()).wrapping_mul(u64::from(index) + 1));
    }
}

/// A bank of shards fed directly by self-routing ADUs.
#[derive(Debug)]
pub struct ShardedSink {
    shards: Vec<Shard>,
}

impl ShardedSink {
    /// Create `n` shards.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "at least one shard");
        Self {
            shards: (0..n).map(|_| Shard::default()).collect(),
        }
    }

    /// Ingest one ADU: the name alone routes it.
    ///
    /// # Errors
    /// [`ShardError`] for foreign names or out-of-range shards.
    pub fn ingest_adu(&mut self, adu: &Adu) -> Result<(), ShardError> {
        let AduName::Shard { shard, index } = adu.name else {
            return Err(ShardError::WrongNameSpace);
        };
        let n = self.shards.len();
        let slot = self
            .shards
            .get_mut(shard as usize)
            .ok_or(ShardError::NoSuchShard { shard, have: n })?;
        slot.consume(index, &adu.payload);
        Ok(())
    }

    /// The shards.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Total bytes ingested across shards.
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes).sum()
    }

    /// Combined digest (order-insensitive).
    pub fn combined_digest(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |a, s| a.wrapping_add(s.digest))
    }
}

/// The byte-stream baseline: records serialized into one stream
/// (`[shard u16][index u32][len u32][body]`), re-split serially.
#[derive(Debug)]
pub struct StreamResplitter {
    sink: ShardedSink,
    /// Unconsumed stream bytes (partial record tail).
    carry: Vec<u8>,
    /// Records whose header was unparsable.
    pub framing_errors: u64,
}

/// Serialize a shard workload into the byte-stream form the resplitter
/// consumes. This is what "sending to a parallel processor over TCP"
/// looks like: structure erased into a byte sequence.
pub fn serialize_stream(adus: &[Adu]) -> Vec<u8> {
    let mut out = Vec::new();
    for adu in adus {
        if let AduName::Shard { shard, index } = adu.name {
            out.extend_from_slice(&shard.to_be_bytes());
            out.extend_from_slice(&index.to_be_bytes());
            out.extend_from_slice(&(adu.payload.len() as u32).to_be_bytes());
            out.extend_from_slice(&adu.payload);
        }
    }
    out
}

impl StreamResplitter {
    /// Create a resplitter feeding `n` shards.
    pub fn new(n: usize) -> Self {
        Self {
            sink: ShardedSink::new(n),
            carry: Vec::new(),
            framing_errors: 0,
        }
    }

    /// Feed stream bytes; parses complete records serially and forwards
    /// each body to its shard (an extra copy through the splitter — the
    /// hot spot).
    pub fn ingest_stream(&mut self, bytes: &[u8]) {
        // The splitter must accumulate (copy #1) because records straddle
        // reads...
        self.carry.extend_from_slice(bytes);
        let mut cursor = 0usize;
        while self.carry.len() - cursor >= 10 {
            let shard = u16::from_be_bytes([self.carry[cursor], self.carry[cursor + 1]]);
            let index = u32::from_be_bytes([
                self.carry[cursor + 2],
                self.carry[cursor + 3],
                self.carry[cursor + 4],
                self.carry[cursor + 5],
            ]);
            let len = u32::from_be_bytes([
                self.carry[cursor + 6],
                self.carry[cursor + 7],
                self.carry[cursor + 8],
                self.carry[cursor + 9],
            ]) as usize;
            if self.carry.len() - cursor - 10 < len {
                break;
            }
            let body = &self.carry[cursor + 10..cursor + 10 + len];
            cursor += 10 + len;
            // ...and forwards the body onward (copy #2 is inside consume's
            // read; the dispatch itself is the serial bottleneck).
            match self.sink.shards.get_mut(shard as usize) {
                Some(s) => s.consume(index, body),
                None => self.framing_errors += 1,
            }
        }
        self.carry.drain(..cursor);
    }

    /// The shard bank.
    pub fn sink(&self) -> &ShardedSink {
        &self.sink
    }
}

/// Build a shard workload: `units_per_shard` units of `unit_bytes` for each
/// of `shards` shards, with deterministic contents.
pub fn shard_workload(shards: u16, units_per_shard: u32, unit_bytes: usize) -> Vec<Adu> {
    let mut adus = Vec::with_capacity(shards as usize * units_per_shard as usize);
    for index in 0..units_per_shard {
        for shard in 0..shards {
            adus.push(Adu::new(
                AduName::Shard { shard, index },
                (0..unit_bytes)
                    .map(|i| (shard as usize * 131 + index as usize * 31 + i) as u8)
                    .collect::<Vec<u8>>(),
            ));
        }
    }
    adus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adus_route_to_named_shards() {
        let adus = shard_workload(4, 10, 100);
        let mut sink = ShardedSink::new(4);
        for adu in &adus {
            sink.ingest_adu(adu).unwrap();
        }
        for shard in sink.shards() {
            assert_eq!(shard.units, 10);
            assert_eq!(shard.bytes, 1000);
        }
        assert_eq!(sink.total_bytes(), 4000);
    }

    #[test]
    fn out_of_order_ingest_same_digest() {
        let adus = shard_workload(3, 20, 64);
        let mut in_order = ShardedSink::new(3);
        for adu in &adus {
            in_order.ingest_adu(adu).unwrap();
        }
        let mut reversed = ShardedSink::new(3);
        for adu in adus.iter().rev() {
            reversed.ingest_adu(adu).unwrap();
        }
        assert_eq!(in_order.combined_digest(), reversed.combined_digest());
    }

    #[test]
    fn stream_resplit_matches_direct_routing() {
        let adus = shard_workload(4, 15, 200);
        let mut direct = ShardedSink::new(4);
        for adu in &adus {
            direct.ingest_adu(adu).unwrap();
        }
        let stream = serialize_stream(&adus);
        let mut splitter = StreamResplitter::new(4);
        // Feed in awkward chunk sizes to exercise the carry buffer.
        for chunk in stream.chunks(777) {
            splitter.ingest_stream(chunk);
        }
        assert_eq!(splitter.framing_errors, 0);
        assert_eq!(splitter.sink().total_bytes(), direct.total_bytes());
        assert_eq!(splitter.sink().combined_digest(), direct.combined_digest());
    }

    #[test]
    fn wrong_namespace_rejected() {
        let mut sink = ShardedSink::new(2);
        let adu = Adu::new(AduName::Seq { index: 0 }, vec![1]);
        assert_eq!(sink.ingest_adu(&adu), Err(ShardError::WrongNameSpace));
    }

    #[test]
    fn out_of_range_shard_rejected() {
        let mut sink = ShardedSink::new(2);
        let adu = Adu::new(AduName::Shard { shard: 5, index: 0 }, vec![1]);
        assert_eq!(
            sink.ingest_adu(&adu),
            Err(ShardError::NoSuchShard { shard: 5, have: 2 })
        );
    }

    #[test]
    fn resplitter_counts_bad_shard_as_framing_error() {
        let adus = vec![Adu::new(AduName::Shard { shard: 9, index: 0 }, vec![1, 2])];
        let stream = serialize_stream(&adus);
        let mut splitter = StreamResplitter::new(2);
        splitter.ingest_stream(&stream);
        assert_eq!(splitter.framing_errors, 1);
    }

    #[test]
    fn partial_records_carry_across_reads() {
        let adus = shard_workload(1, 1, 50);
        let stream = serialize_stream(&adus);
        let mut splitter = StreamResplitter::new(1);
        splitter.ingest_stream(&stream[..5]); // header cut mid-way
        assert_eq!(splitter.sink().total_bytes(), 0);
        splitter.ingest_stream(&stream[5..]);
        assert_eq!(splitter.sink().total_bytes(), 50);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardedSink::new(0);
    }

    #[test]
    fn shard_ingest_over_adaptive_transport() {
        // The §7 pipeline end-to-end under adaptive transfer control: shard
        // ADUs cross a real AduTransport pair (RTT-driven RTO, congestion
        // window, rate pacing all live) and self-route into the sink as
        // they complete — out of order is fine, the digest is
        // order-insensitive.
        use alf_core::transport::{AduTransport, AlfConfig, RecoveryMode, SendRefused};
        use ct_netsim::time::{SimDuration, SimTime};

        let adus = shard_workload(4, 25, 600);
        let mut expect = ShardedSink::new(4);
        for adu in &adus {
            expect.ingest_adu(adu).unwrap();
        }

        let cfg = AlfConfig {
            adaptive: true,
            recovery: RecoveryMode::TransportBuffer,
            ..AlfConfig::default()
        };
        let mut tx = AduTransport::new(cfg);
        let mut rx = AduTransport::new(cfg);
        let mut sink = ShardedSink::new(4);
        let mut offered = 0usize;
        let mut now = SimTime::ZERO;
        for _ in 0..100_000 {
            while offered < adus.len() {
                match tx.send_adu(adus[offered].name, adus[offered].payload.clone()) {
                    Ok(_) => offered += 1,
                    // Transient: the window (ours or the receiver's) will
                    // reopen as ACKs arrive — retry on the next tick.
                    Err(SendRefused::WindowFull | SendRefused::Backpressured) => break,
                    Err(e) => panic!("shard ingest refused fatally: {e}"),
                }
            }
            now += SimDuration::from_micros(50);
            for f in tx.poll(now) {
                rx.on_message(now, &f);
            }
            for f in rx.poll(now) {
                tx.on_message(now, &f);
            }
            while let Some((adu, _latency)) = rx.recv_adu() {
                sink.ingest_adu(&adu).unwrap();
            }
            if offered == adus.len() && tx.send_complete() && rx.recv_available() == 0 {
                break;
            }
        }
        assert_eq!(sink.total_bytes(), expect.total_bytes());
        assert_eq!(sink.combined_digest(), expect.combined_digest());
        assert!(tx.stats.rtt_samples > 0, "adaptive control was live");
        assert!(
            tx.stats.cwnd_adus >= 4.0,
            "clean transfer never shrinks the window"
        );
    }
}

/// Walk the serialized stream form record by record, calling
/// `f(shard, index, body)` for each complete record. Returns the number of
/// records visited. The walk itself is zero-copy; what the callback does
/// with `body` is the dispatch policy under test.
pub fn for_each_record<'a>(stream: &'a [u8], mut f: impl FnMut(u16, u32, &'a [u8])) -> usize {
    let mut cursor = 0usize;
    let mut n = 0usize;
    while stream.len() - cursor >= 10 {
        let shard = u16::from_be_bytes([stream[cursor], stream[cursor + 1]]);
        let index = u32::from_be_bytes([
            stream[cursor + 2],
            stream[cursor + 3],
            stream[cursor + 4],
            stream[cursor + 5],
        ]);
        let len = u32::from_be_bytes([
            stream[cursor + 6],
            stream[cursor + 7],
            stream[cursor + 8],
            stream[cursor + 9],
        ]) as usize;
        if stream.len() - cursor - 10 < len {
            break;
        }
        f(shard, index, &stream[cursor + 10..cursor + 10 + len]);
        cursor += 10 + len;
        n += 1;
    }
    n
}

/// Consume a batch of `(index, body)` units into one [`Shard`] — the
/// per-processor-part work loop used by the X5 experiment's parallel paths.
pub fn consume_batch<'a>(units: impl IntoIterator<Item = (u32, &'a [u8])>) -> Shard {
    let mut shard = Shard::default();
    for (index, body) in units {
        shard.consume(index, body);
    }
    shard
}

#[cfg(test)]
mod record_tests {
    use super::*;

    #[test]
    fn for_each_record_visits_all() {
        let adus = shard_workload(3, 5, 64);
        let stream = serialize_stream(&adus);
        let mut seen = 0usize;
        let n = for_each_record(&stream, |shard, _idx, body| {
            assert!(shard < 3);
            assert_eq!(body.len(), 64);
            seen += 1;
        });
        assert_eq!(n, 15);
        assert_eq!(seen, 15);
    }

    #[test]
    fn consume_batch_matches_sink() {
        let adus = shard_workload(1, 10, 100);
        let mut sink = ShardedSink::new(1);
        for adu in &adus {
            sink.ingest_adu(adu).unwrap();
        }
        let batch = consume_batch(adus.iter().map(|a| {
            let AduName::Shard { index, .. } = a.name else {
                unreachable!()
            };
            (index, a.payload.as_slice())
        }));
        assert_eq!(batch.digest, sink.shards()[0].digest);
        assert_eq!(batch.bytes, sink.shards()[0].bytes);
    }

    #[test]
    fn truncated_stream_stops_cleanly() {
        let adus = shard_workload(1, 2, 50);
        let stream = serialize_stream(&adus);
        let n = for_each_record(&stream[..stream.len() - 1], |_, _, _| {});
        assert_eq!(n, 1);
    }
}
