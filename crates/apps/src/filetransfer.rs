//! ALF file transfer: out-of-order placement into the receiver's file.
//!
//! §5: "for each ADU, the sender must provide information as to its eventual
//! location within the receiver's file. … Using this information, the
//! receiver can copy the data into the file at the correct location, even
//! though intervening ADUs are missing."
//!
//! [`FileSender`] cuts a file into [`AduName::FileRange`]-named ADUs;
//! [`FileReceiver`] places each arriving ADU at its named offset the moment
//! it completes — the presentation pipeline never stalls on a gap.

use alf_core::adu::{Adu, AduName};
use std::collections::BTreeMap;

/// Cuts a file into placement-named ADUs.
#[derive(Debug)]
pub struct FileSender<'a> {
    file: &'a [u8],
    adu_size: usize,
}

impl<'a> FileSender<'a> {
    /// Create a sender over `file` producing ADUs of `adu_size` bytes
    /// (the last one may be shorter).
    ///
    /// # Panics
    /// If `adu_size` is zero.
    pub fn new(file: &'a [u8], adu_size: usize) -> Self {
        assert!(adu_size > 0, "adu_size must be positive");
        Self { file, adu_size }
    }

    /// Number of ADUs this file becomes.
    pub fn adu_count(&self) -> usize {
        self.file.len().div_ceil(self.adu_size).max(1)
    }

    /// Produce all ADUs. Each is independently placeable: its name is the
    /// byte offset it occupies in the receiver's file.
    pub fn adus(&self) -> Vec<Adu> {
        if self.file.is_empty() {
            return vec![Adu::new(AduName::FileRange { offset: 0 }, Vec::new())];
        }
        self.file
            .chunks(self.adu_size)
            .enumerate()
            .map(|(i, chunk)| {
                Adu::new(
                    AduName::FileRange {
                        offset: (i * self.adu_size) as u64,
                    },
                    chunk.to_vec(),
                )
            })
            .collect()
    }
}

/// Error from [`FileReceiver::place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceError {
    /// The ADU's name is not a [`AduName::FileRange`].
    WrongNameSpace,
    /// The ADU extends past the declared file size.
    OutOfRange {
        /// Offset named by the ADU.
        offset: u64,
        /// ADU payload length.
        len: usize,
        /// Declared file size.
        file_size: usize,
    },
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::WrongNameSpace => write!(f, "ADU name is not a file range"),
            PlaceError::OutOfRange {
                offset,
                len,
                file_size,
            } => {
                write!(
                    f,
                    "ADU [{offset}, +{len}) outside file of {file_size} bytes"
                )
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// Assembles a file from placement-named ADUs arriving in any order.
#[derive(Debug)]
pub struct FileReceiver {
    buf: Vec<u8>,
    /// Received extents `offset -> len` (disjoint after merging).
    extents: BTreeMap<u64, usize>,
    bytes_placed: usize,
    /// ADUs placed out of ascending-offset order (the ALF win made visible).
    pub out_of_order_placements: u64,
    highest_end: u64,
}

impl FileReceiver {
    /// Create a receiver for a file of `size` bytes.
    pub fn new(size: usize) -> Self {
        Self {
            buf: vec![0u8; size],
            extents: BTreeMap::new(),
            bytes_placed: 0,
            out_of_order_placements: 0,
            highest_end: 0,
        }
    }

    /// Place one ADU at its named offset (a single data copy, straight to
    /// the final location). Duplicate coverage is ignored byte-for-byte.
    ///
    /// # Errors
    /// [`PlaceError`] for a foreign name-space or out-of-range placement.
    pub fn place(&mut self, adu: &Adu) -> Result<(), PlaceError> {
        let AduName::FileRange { offset } = adu.name else {
            return Err(PlaceError::WrongNameSpace);
        };
        let len = adu.payload.len();
        let end = offset as usize + len;
        if end > self.buf.len() {
            return Err(PlaceError::OutOfRange {
                offset,
                len,
                file_size: self.buf.len(),
            });
        }
        if offset < self.highest_end {
            // Arrived behind data we already placed — out-of-order
            // placement a byte-stream receiver could not have done.
            if !self.extents.contains_key(&offset) {
                self.out_of_order_placements += 1;
            }
        }
        self.highest_end = self.highest_end.max(end as u64);
        if let Some(&have) = self.extents.get(&offset) {
            if have >= len {
                return Ok(()); // duplicate
            }
        }
        self.buf[offset as usize..end].copy_from_slice(&adu.payload);
        let prev = self.extents.insert(offset, len);
        self.bytes_placed += len - prev.unwrap_or(0);
        Ok(())
    }

    /// True once every byte of the file has been placed.
    pub fn is_complete(&self) -> bool {
        self.bytes_placed >= self.buf.len()
    }

    /// Bytes placed so far.
    pub fn bytes_placed(&self) -> usize {
        self.bytes_placed
    }

    /// Byte ranges still missing, as `(offset, len)` holes.
    pub fn holes(&self) -> Vec<(u64, usize)> {
        let mut holes = Vec::new();
        let mut cursor = 0u64;
        for (&off, &len) in &self.extents {
            if off > cursor {
                holes.push((cursor, (off - cursor) as usize));
            }
            cursor = cursor.max(off + len as u64);
        }
        if (cursor as usize) < self.buf.len() {
            holes.push((cursor, self.buf.len() - cursor as usize));
        }
        holes
    }

    /// Consume into the assembled file. Missing ranges remain zero-filled.
    pub fn into_file(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the (possibly incomplete) file contents.
    pub fn file(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(n: usize) -> Vec<u8> {
        (0..n)
            .map(|i| (i.wrapping_mul(37) ^ (i >> 3)) as u8)
            .collect()
    }

    #[test]
    fn in_order_transfer() {
        let data = file(10_000);
        let sender = FileSender::new(&data, 1024);
        let mut rx = FileReceiver::new(data.len());
        for adu in sender.adus() {
            rx.place(&adu).unwrap();
        }
        assert!(rx.is_complete());
        assert_eq!(rx.into_file(), data);
    }

    #[test]
    fn reverse_order_transfer() {
        let data = file(8_192);
        let sender = FileSender::new(&data, 1000);
        let mut rx = FileReceiver::new(data.len());
        let mut adus = sender.adus();
        adus.reverse();
        for adu in &adus {
            rx.place(adu).unwrap();
        }
        assert!(rx.is_complete());
        assert!(rx.out_of_order_placements > 0);
        assert_eq!(rx.into_file(), data);
    }

    #[test]
    fn holes_reported_in_application_terms() {
        let data = file(3000);
        let sender = FileSender::new(&data, 1000);
        let adus = sender.adus();
        let mut rx = FileReceiver::new(3000);
        rx.place(&adus[0]).unwrap();
        rx.place(&adus[2]).unwrap();
        assert!(!rx.is_complete());
        // The missing piece is named as a file range — exactly the
        // information the application needs to request recovery.
        assert_eq!(rx.holes(), vec![(1000, 1000)]);
        rx.place(&adus[1]).unwrap();
        assert!(rx.is_complete());
        assert!(rx.holes().is_empty());
    }

    #[test]
    fn duplicates_harmless() {
        let data = file(2048);
        let sender = FileSender::new(&data, 512);
        let mut rx = FileReceiver::new(2048);
        for adu in sender.adus() {
            rx.place(&adu).unwrap();
            rx.place(&adu).unwrap();
        }
        assert!(rx.is_complete());
        assert_eq!(rx.bytes_placed(), 2048);
        assert_eq!(rx.into_file(), data);
    }

    #[test]
    fn wrong_namespace_rejected() {
        let mut rx = FileReceiver::new(100);
        let adu = Adu::new(AduName::Seq { index: 0 }, vec![1, 2, 3]);
        assert_eq!(rx.place(&adu), Err(PlaceError::WrongNameSpace));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut rx = FileReceiver::new(100);
        let adu = Adu::new(AduName::FileRange { offset: 90 }, vec![0; 20]);
        assert!(matches!(rx.place(&adu), Err(PlaceError::OutOfRange { .. })));
    }

    #[test]
    fn empty_file() {
        let sender = FileSender::new(&[], 1024);
        assert_eq!(sender.adu_count(), 1);
        let mut rx = FileReceiver::new(0);
        for adu in sender.adus() {
            rx.place(&adu).unwrap();
        }
        assert!(rx.is_complete());
    }

    #[test]
    fn uneven_tail() {
        let data = file(2500);
        let sender = FileSender::new(&data, 1000);
        let adus = sender.adus();
        assert_eq!(adus.len(), 3);
        assert_eq!(adus[2].payload.len(), 500);
        let mut rx = FileReceiver::new(2500);
        for adu in &adus {
            rx.place(adu).unwrap();
        }
        assert_eq!(rx.into_file(), data);
    }
}
