//! X1 — head-of-line blocking: completion time of a byte-stream transfer vs
//! an ALF transfer under 2% loss (simulated-time dynamics driven as fast as
//! the host allows; the interesting output is the harness's virtual-time
//! table, this bench tracks the host cost of the simulation itself).

use alf_core::driver::{run_alf_transfer, seq_workload, Substrate};
use alf_core::transport::AlfConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use ct_bench::byte_workload;
use ct_netsim::fault::FaultConfig;
use ct_netsim::link::LinkConfig;
use ct_netsim::time::SimDuration;
use ct_transport::run_transfer;
use ct_transport::stream::StreamConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let stream_payload = byte_workload(200_000);
    let adus = seq_workload(50, 4000);
    c.bench_function("x1/tcp_200kB_2pct_loss", |b| {
        b.iter(|| {
            let r = run_transfer(
                7,
                LinkConfig::lan(),
                FaultConfig::loss(0.02),
                StreamConfig::default(),
                black_box(&stream_payload),
            );
            assert!(r.complete);
            black_box(r.elapsed)
        })
    });
    c.bench_function("x1/alf_200kB_2pct_loss", |b| {
        b.iter(|| {
            let r = run_alf_transfer(
                7,
                LinkConfig::lan(),
                FaultConfig::loss(0.02),
                AlfConfig {
                    retransmit_timeout: SimDuration::from_millis(5),
                    assembly_timeout: SimDuration::from_millis(2),
                    ..AlfConfig::default()
                },
                Substrate::Packet,
                black_box(&adus),
                None,
            );
            assert!(r.complete && r.verified);
            black_box(r.elapsed)
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
