//! X3 — ADUs over ATM cells: segmentation/reassembly cost and cell-loss
//! amplification (§5's "probably too small a unit" argument).

use alf_core::driver::{run_alf_transfer, seq_workload, Substrate};
use alf_core::transport::{AlfConfig, RecoveryMode};
use criterion::{criterion_group, criterion_main, Criterion};
use ct_netsim::atm::{cells_for, segment};
use ct_netsim::fault::FaultConfig;
use ct_netsim::link::LinkConfig;
use ct_netsim::time::SimDuration;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Raw SAR cost: cut a 4000-byte PDU into 53-byte cells.
    let pdu = vec![0xA5u8; 4000];
    c.bench_function("x3/segment_4000B_pdu", |b| {
        b.iter(|| black_box(segment(1, 0, black_box(&pdu))))
    });
    assert_eq!(cells_for(4000), segment(1, 0, &pdu).len());

    // End-to-end ADU transfer over the cell substrate with 0.1% cell loss.
    let adus = seq_workload(30, 4000);
    c.bench_function("x3/alf_over_atm_0.1pct_cell_loss", |b| {
        b.iter(|| {
            let r = run_alf_transfer(
                9,
                LinkConfig::gigabit(),
                FaultConfig::loss(0.001),
                AlfConfig {
                    recovery: RecoveryMode::NoRetransmit,
                    assembly_timeout: SimDuration::from_millis(20),
                    ..AlfConfig::default()
                },
                Substrate::Atm,
                black_box(&adus),
                None,
            );
            assert!(r.verified);
            black_box(r.adus_delivered)
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
