//! X2 — integrated vs layered pipeline execution as manipulation stages
//! accumulate (§6's ILP performance argument).

use alf_core::pipeline::canonical_receive_chain;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ct_bench::byte_workload;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let input = byte_workload(4000);
    for n in 1..=4usize {
        let p = canonical_receive_chain(n, 0xC1A);
        let mut g = c.benchmark_group(format!("x2_ilp/{n}_stages"));
        g.throughput(Throughput::Bytes(input.len() as u64));
        g.bench_function("layered", |b| {
            b.iter(|| black_box(p.run_layered(black_box(&input))))
        });
        g.bench_function("integrated", |b| {
            b.iter(|| black_box(p.run_integrated(black_box(&input))))
        });
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
