//! E2 — fused copy+checksum vs two serial passes, across working-set sizes
//! (the ILP memory-pass argument of §4).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ct_bench::byte_workload;
use ct_wire::checksum::internet_checksum_unrolled;
use ct_wire::copy::copy_words_unrolled;
use ct_wire::fused::copy_and_checksum;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for (label, size) in [("4kB", 4000usize), ("8MB", 8 << 20)] {
        let src = byte_workload(size);
        let mut dst = vec![0u8; size];
        let mut g = c.benchmark_group(format!("e2_fusion/{label}"));
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function("serial_copy_then_checksum", |b| {
            b.iter(|| {
                copy_words_unrolled(black_box(&src), black_box(&mut dst));
                black_box(internet_checksum_unrolled(black_box(&dst)))
            })
        });
        g.bench_function("fused_copy_and_checksum", |b| {
            b.iter(|| black_box(copy_and_checksum(black_box(&src), black_box(&mut dst))))
        });
        g.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
