//! E5 — conversion fused with checksum: "converted and checksummed in one
//! step" costs little over conversion alone (§4: 28 → 24 Mb/s).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ct_bench::u32_workload;
use ct_presentation::{ber, fused, xdr};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ints = u32_workload(1000);
    let app_bytes = ints.len() * 4;
    let mut g = c.benchmark_group("e5_convert_cksum");
    g.throughput(Throughput::Bytes(app_bytes as u64));
    g.bench_function("ber_encode_alone", |b| {
        b.iter(|| black_box(ber::encode_u32_array(black_box(&ints))))
    });
    g.bench_function("ber_encode_checksummed", |b| {
        b.iter(|| black_box(fused::ber_encode_u32s_checksummed(black_box(&ints))))
    });
    g.bench_function("xdr_encode_alone", |b| {
        b.iter(|| black_box(xdr::encode_u32_array(black_box(&ints))))
    });
    g.bench_function("xdr_encode_checksummed", |b| {
        b.iter(|| black_box(fused::xdr_encode_u32s_checksummed(black_box(&ints))))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
