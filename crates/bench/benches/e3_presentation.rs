//! E3 — presentation conversion cost vs a word copy (§4: BER integer-array
//! conversion runs a factor of 4-5 slower than a copy; more on modern CPUs).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ct_bench::{byte_workload, u32_workload};
use ct_presentation::{ber, lwts, xdr};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ints = u32_workload(1000);
    let app_bytes = ints.len() * 4;
    let src = byte_workload(app_bytes);
    let mut dst = vec![0u8; app_bytes];
    let ber_wire = ber::encode_u32_array(&ints);
    let xdr_wire = xdr::encode_u32_array(&ints);
    let lwts_wire = lwts::encode_u32_array(&ints);

    let mut g = c.benchmark_group("e3_presentation");
    g.throughput(Throughput::Bytes(app_bytes as u64));
    g.bench_function("word_copy_baseline", |b| {
        b.iter(|| ct_wire::copy::copy_words_unrolled(black_box(&src), black_box(&mut dst)))
    });
    g.bench_function("ber_encode", |b| {
        b.iter(|| black_box(ber::encode_u32_array(black_box(&ints))))
    });
    g.bench_function("ber_decode", |b| {
        b.iter(|| black_box(ber::decode_u32_array(black_box(&ber_wire)).unwrap()))
    });
    g.bench_function("xdr_encode", |b| {
        b.iter(|| black_box(xdr::encode_u32_array(black_box(&ints))))
    });
    g.bench_function("xdr_decode", |b| {
        b.iter(|| black_box(xdr::decode_u32_array(black_box(&xdr_wire)).unwrap()))
    });
    g.bench_function("lwts_encode", |b| {
        b.iter(|| black_box(lwts::encode_u32_array(black_box(&ints))))
    });
    g.bench_function("lwts_decode", |b| {
        b.iter(|| black_box(lwts::decode_u32_array(black_box(&lwts_wire)).unwrap()))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
