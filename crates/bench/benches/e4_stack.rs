//! E4 — full layered stack throughput: OCTET STRING vs BER INTEGER array
//! (§4's ISODE experiment: presentation dominates the stack).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ct_bench::{byte_workload, u32_workload};
use ct_netsim::fault::FaultConfig;
use ct_netsim::link::LinkConfig;
use ct_presentation::TransferSyntax;
use ct_transport::stack::{run_layered_transfer, Record, StackConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n_records = 10;
    let ints = 4000usize;
    let octets: Vec<Record> = (0..n_records)
        .map(|_| Record::Octets(byte_workload(ints * 4)))
        .collect();
    let arrays: Vec<Record> = (0..n_records)
        .map(|_| Record::U32Array(u32_workload(ints)))
        .collect();
    let app_bytes = (n_records * ints * 4) as u64;

    let mut g = c.benchmark_group("e4_stack");
    g.throughput(Throughput::Bytes(app_bytes));
    g.sample_size(10);
    g.bench_function("octet_string", |b| {
        b.iter(|| {
            let rep = run_layered_transfer(
                1,
                LinkConfig::gigabit(),
                FaultConfig::none(),
                StackConfig::default(),
                black_box(&octets),
            );
            assert!(rep.complete);
            black_box(rep.app_bytes)
        })
    });
    g.bench_function("integer_array_generic_ber", |b| {
        b.iter(|| {
            let rep = run_layered_transfer(
                1,
                LinkConfig::gigabit(),
                FaultConfig::none(),
                StackConfig::default(),
                black_box(&arrays),
            );
            assert!(rep.complete);
            black_box(rep.app_bytes)
        })
    });
    g.bench_function("integer_array_tuned_ber", |b| {
        b.iter(|| {
            let rep = run_layered_transfer(
                1,
                LinkConfig::gigabit(),
                FaultConfig::none(),
                StackConfig {
                    syntax: TransferSyntax::Ber,
                    generic_presentation: false,
                    ..StackConfig::default()
                },
                black_box(&arrays),
            );
            assert!(rep.complete);
            black_box(rep.app_bytes)
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
