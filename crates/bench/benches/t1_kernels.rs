//! T1 — Table 1: copy and checksum kernel throughput on the paper's
//! 4000-byte packet.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ct_bench::byte_workload;
use ct_wire::checksum::{
    adler32, crc32, fletcher32, internet_checksum, internet_checksum_unrolled,
};
use ct_wire::copy::CopyKind;
use std::hint::black_box;

const PACKET: usize = 4000;

fn bench(c: &mut Criterion) {
    let src = byte_workload(PACKET);
    let mut dst = vec![0u8; PACKET];
    let mut g = c.benchmark_group("t1_kernels");
    g.throughput(Throughput::Bytes(PACKET as u64));
    for kind in [
        CopyKind::Memcpy,
        CopyKind::ByteRolled,
        CopyKind::Word,
        CopyKind::WordUnrolled,
    ] {
        g.bench_function(format!("copy/{}", kind.name()), |b| {
            b.iter(|| kind.run(black_box(&src), black_box(&mut dst)))
        });
    }
    g.bench_function("checksum/internet-rolled", |b| {
        b.iter(|| black_box(internet_checksum(black_box(&src))))
    });
    g.bench_function("checksum/internet-unrolled", |b| {
        b.iter(|| black_box(internet_checksum_unrolled(black_box(&src))))
    });
    g.bench_function("checksum/fletcher32", |b| {
        b.iter(|| black_box(fletcher32(black_box(&src))))
    });
    g.bench_function("checksum/adler32", |b| {
        b.iter(|| black_box(adler32(black_box(&src))))
    });
    g.bench_function("checksum/crc32", |b| {
        b.iter(|| black_box(crc32(black_box(&src))))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
