//! T2 — in-band control cost (processing one ACK) vs data-manipulation cost
//! (copy+checksum of a 4000-byte packet), §4's "tens of instructions"
//! observation.

use criterion::{criterion_group, criterion_main, Criterion};
use ct_bench::byte_workload;
use ct_netsim::time::SimTime;
use ct_transport::segment::{Segment, FLAG_ACK};
use ct_transport::stream::{StreamConfig, StreamTransport};
use ct_wire::fused::copy_and_checksum;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut sender = StreamTransport::new(StreamConfig::default(), 1, 2);
    sender.send(&byte_workload(1400));
    let _ = sender.poll(SimTime::ZERO);
    let ack = Segment {
        src_port: 2,
        dst_port: 1,
        seq: 0,
        ack: 0,
        flags: FLAG_ACK,
        window: 65535,
        payload: vec![].into(),
    }
    .encode();
    c.bench_function("t2/control_process_ack", |b| {
        b.iter(|| sender.on_segment(SimTime::ZERO, black_box(&ack)))
    });

    let src = byte_workload(4000);
    let mut dst = vec![0u8; 4000];
    c.bench_function("t2/manipulation_copy_checksum_4000B", |b| {
        b.iter(|| black_box(copy_and_checksum(black_box(&src), black_box(&mut dst))))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
