//! X5 — §7's parallel-processor delivery: self-routing ADUs vs a serial
//! stream resplitter.

use alf_core::adu::AduName;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ct_apps::parallel::{
    consume_batch, for_each_record, serialize_stream, shard_workload, StreamResplitter,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let shards = 4u16;
    let adus = shard_workload(shards, 64, 8192);
    let total: usize = adus.iter().map(|a| a.payload.len()).sum();
    let stream = serialize_stream(&adus);
    let mut partitioned: Vec<Vec<(u32, &[u8])>> = vec![Vec::new(); shards as usize];
    for adu in &adus {
        if let AduName::Shard { shard, index } = adu.name {
            partitioned[shard as usize].push((index, adu.payload.as_slice()));
        }
    }

    let mut g = c.benchmark_group("x5_parallel");
    g.throughput(Throughput::Bytes(total as u64));
    g.bench_function("alf_self_routed_parallel", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for part in &partitioned {
                    scope.spawn(move || {
                        black_box(consume_batch(part.iter().copied()).digest);
                    });
                }
            })
        })
    });
    g.bench_function("stream_split_then_parallel", |b| {
        b.iter(|| {
            let mut queues: Vec<Vec<(u32, Vec<u8>)>> = vec![Vec::new(); shards as usize];
            for_each_record(&stream, |shard, index, body| {
                queues[shard as usize].push((index, body.to_vec()));
            });
            std::thread::scope(|scope| {
                for q in &queues {
                    scope.spawn(move || {
                        black_box(consume_batch(q.iter().map(|(i, b)| (*i, b.as_slice()))).digest);
                    });
                }
            })
        })
    });
    g.bench_function("stream_fully_serial", |b| {
        b.iter(|| {
            let mut splitter = StreamResplitter::new(shards as usize);
            splitter.ingest_stream(black_box(&stream));
            black_box(splitter.sink().total_bytes())
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
