//! X4 — the three loss-recovery modes of §5, run under 2% loss.

use alf_core::adu::AduName;
use alf_core::driver::{run_alf_transfer, seq_workload, workload_payload, Substrate};
use alf_core::transport::{AlfConfig, RecoveryMode};
use criterion::{criterion_group, criterion_main, Criterion};
use ct_netsim::fault::FaultConfig;
use ct_netsim::link::LinkConfig;
use ct_netsim::time::SimDuration;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let adus = seq_workload(40, 4000);
    let oracle = |name: AduName| match name {
        AduName::Seq { index } => workload_payload(index, 4000),
        _ => unreachable!(),
    };
    for (label, mode) in [
        ("transport_buffer", RecoveryMode::TransportBuffer),
        ("app_recompute", RecoveryMode::AppRecompute),
        ("no_retransmit", RecoveryMode::NoRetransmit),
    ] {
        c.bench_function(format!("x4/{label}_2pct_loss"), |b| {
            b.iter(|| {
                let r = run_alf_transfer(
                    5,
                    LinkConfig::lan(),
                    FaultConfig::loss(0.02),
                    AlfConfig {
                        recovery: mode,
                        retransmit_timeout: SimDuration::from_millis(5),
                        assembly_timeout: SimDuration::from_millis(2),
                        ..AlfConfig::default()
                    },
                    Substrate::Packet,
                    black_box(&adus),
                    Some(&oracle),
                );
                assert!(r.verified);
                black_box(r.adus_delivered)
            })
        });
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
