//! X6 — ADU-level FEC (§5 footnote 10): parity encode cost and the
//! end-to-end delivery effect under loss without retransmission.

use alf_core::adu::AduName;
use alf_core::driver::{run_alf_transfer, seq_workload, Substrate};
use alf_core::fec::build_parity;
use alf_core::transport::{AlfConfig, RecoveryMode};
use alf_core::wire::fragment_adu;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ct_netsim::fault::FaultConfig;
use ct_netsim::link::LinkConfig;
use ct_netsim::time::SimDuration;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Raw parity construction cost.
    let payload = vec![0x5Au8; 8400];
    let tus = fragment_adu(1, 0, AduName::Seq { index: 0 }, &payload, 1400);
    let mut g = c.benchmark_group("x6_fec");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("build_parity_k4_8400B", |b| {
        b.iter(|| black_box(build_parity(black_box(&tus), 4)))
    });
    g.finish();

    // End-to-end: no-retransmit flow at 3% loss, FEC off vs on.
    let adus = seq_workload(50, 8400);
    for (label, fec_group) in [("fec_off", 0usize), ("fec_k4", 4)] {
        c.bench_function(format!("x6/no_retx_3pct_loss_{label}"), |b| {
            b.iter(|| {
                let r = run_alf_transfer(
                    9,
                    LinkConfig::lan(),
                    FaultConfig::loss(0.03),
                    AlfConfig {
                        recovery: RecoveryMode::NoRetransmit,
                        assembly_timeout: SimDuration::from_millis(5),
                        fec_group,
                        ..AlfConfig::default()
                    },
                    Substrate::Packet,
                    black_box(&adus),
                    None,
                );
                assert!(r.verified);
                black_box(r.adus_delivered)
            })
        });
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
