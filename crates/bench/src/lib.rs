//! Shared measurement utilities for the benchmark harness and the
//! Criterion benches.
//!
//! The paper reports manipulation costs in **Mb/s** ("the normal rating for
//! protocols, if not hosts"); [`time_mbps`] produces that number for any
//! closure that touches a known number of bytes per call. Wall-clock
//! (monotonic) time measures CPU cost; simulated time (from `ct-netsim`)
//! measures protocol dynamics — the two are never mixed in one number.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Minimum measurement window. Long enough to amortise timer noise, short
/// enough that the full harness stays interactive.
pub const MEASURE_WINDOW: Duration = Duration::from_millis(200);

/// Measure the throughput of `f` in megabits per second, where each call
/// processes `bytes_per_iter` bytes. Runs a warm-up call, then iterates
/// for at least [`MEASURE_WINDOW`].
pub fn time_mbps<F: FnMut()>(bytes_per_iter: usize, mut f: F) -> f64 {
    f(); // warm-up (page in buffers, build tables)
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        // Check the clock in batches to keep timer overhead negligible.
        if iters.is_multiple_of(8) && start.elapsed() >= MEASURE_WINDOW {
            break;
        }
        if iters >= 1 << 30 {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    ct_wire::mbps(bytes_per_iter as u64 * iters, secs)
}

/// Measure the mean wall-clock nanoseconds per call of `f`.
pub fn time_ns_per_call<F: FnMut()>(mut f: F) -> f64 {
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        if iters.is_multiple_of(64) && start.elapsed() >= MEASURE_WINDOW {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The paper's standard workload: an array of `n` 32-bit integers with
/// deterministic, varied values (so BER integer bodies take 1–5 bytes the
/// way real data does).
pub fn u32_workload(n: usize) -> Vec<u32> {
    (0..n as u32)
        .map(|i| i.wrapping_mul(2654435761).rotate_left(i % 13))
        .collect()
}

/// A deterministic byte buffer of `n` bytes.
pub fn byte_workload(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| (i.wrapping_mul(131) ^ (i >> 5)) as u8)
        .collect()
}

/// Pretty table printer: fixed-width columns, left-aligned first column.
pub struct Table {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table from a header row.
    pub fn new(header: &[&str]) -> Self {
        let mut t = Table {
            widths: header.iter().map(|h| h.len()).collect(),
            rows: Vec::new(),
        };
        t.row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        t
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        for (i, c) in cells.iter().enumerate() {
            if i >= self.widths.len() {
                self.widths.push(c.len());
            } else {
                self.widths[i] = self.widths[i].max(c.len());
            }
        }
        self.rows.push(cells.to_vec());
    }

    /// Render to a string with a separator under the header.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (ri, row) in self.rows.iter().enumerate() {
            for (i, c) in row.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("{:<width$}", c, width = self.widths[0] + 2));
                } else {
                    out.push_str(&format!("{:>width$}", c, width = self.widths[i] + 2));
                }
            }
            out.push('\n');
            if ri == 0 {
                let total: usize = self.widths.iter().map(|w| w + 2).sum();
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }
}

/// Format a float with sensible precision for table cells.
pub fn fmt_f(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_mbps_positive_and_sane() {
        let buf = byte_workload(64 * 1024);
        let mut dst = vec![0u8; buf.len()];
        let rate = time_mbps(buf.len(), || dst.copy_from_slice(&buf));
        assert!(rate > 100.0, "memcpy should exceed 100 Mb/s, got {rate}");
    }

    #[test]
    fn ns_per_call_positive() {
        let ns = time_ns_per_call(|| {
            std::hint::black_box(1 + 1);
        });
        assert!(ns > 0.0 && ns < 1e6);
    }

    #[test]
    fn workloads_deterministic() {
        assert_eq!(u32_workload(100), u32_workload(100));
        assert_eq!(byte_workload(100), byte_workload(100));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "Mb/s"]);
        t.row(&["copy".into(), "130".into()]);
        t.row(&["checksum".into(), "115".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("----"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn fmt_f_precision() {
        assert_eq!(fmt_f(1234.5), "1234");
        assert_eq!(fmt_f(12.34), "12.3");
        assert_eq!(fmt_f(1.234), "1.23");
    }
}
