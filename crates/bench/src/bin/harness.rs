//! The experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p ct-bench --bin harness [t1|e2|e3|e4|e5|t2|x1|x2|x3|x4|x5|x6|x7|x8|x9|x10|x11|x12|x13|x14|all]
//! cargo run --release -p ct-bench --bin harness x8 [budget_kib]
//! cargo run --release -p ct-bench --bin harness x13 [--assoc N] [--batch M]
//! cargo run --release -p ct-bench --bin harness x14 [--assoc N] [--batch M] [--adus K]
//! ```
//!
//! Each experiment prints the paper's reference numbers next to the
//! measurements from this implementation; EXPERIMENTS.md records a captured
//! run. CPU-cost experiments (T1, E2, E3, E5, T2, X2, X5) use wall-clock
//! time of release-mode kernels; protocol-dynamics experiments (E4 partly,
//! X1, X3, X4) use the deterministic simulator's virtual clock.

use alf_core::adu::AduName;
use alf_core::driver::{
    run_alf_transfer, run_alf_transfer_scenario, seq_workload, workload_payload, ScenarioOpts,
    Substrate,
};
use alf_core::pipeline::canonical_receive_chain;
use alf_core::transport::{AduTransport, AlfConfig, RecoveryMode};
use ct_apps::parallel::{
    consume_batch, for_each_record, serialize_stream, shard_workload, StreamResplitter,
};
use ct_bench::{byte_workload, fmt_f, time_mbps, time_ns_per_call, u32_workload, Table};
use ct_netsim::fault::{FaultConfig, MutatorConfig};
use ct_netsim::link::LinkConfig;
use ct_netsim::net::Network;
use ct_netsim::time::{SimDuration, SimTime};
use ct_presentation::{ber, fused as pfused, lwts, xdr, TransferSyntax};
use ct_telemetry::span::{stream_stall_summary, stream_stalls, SpanReport};
use ct_telemetry::{Event, Telemetry, TouchLedger};
use ct_transport::segment::Segment;
use ct_transport::stack::{
    run_layered_transfer, run_layered_transfer_telemetry, Record, StackConfig,
};
use ct_transport::stream::{StreamConfig, StreamTransport};
use ct_transport::{run_transfer, run_transfer_telemetry, TransferReport};
use ct_wire::checksum::{
    adler32, crc32, fletcher32, internet_checksum, internet_checksum_unrolled,
};
use ct_wire::copy::CopyKind;
use ct_wire::fused::copy_and_checksum;
use ct_wire::serial_effective_mbps;

/// The paper's "typical large packet today": 4000 bytes.
const PACKET_BYTES: usize = 4000;

const EXPERIMENTS: &[&str] = &[
    "t1", "e2", "e3", "e4", "e5", "t2", "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9",
    "x10", "x11", "x12", "x13", "x14",
];

/// Parse the shared `[--assoc N] [--batch M] [--adus K]` smoke-override
/// tail used by the cluster experiments (x13, x14). `exp` names the
/// experiment for error messages.
fn cluster_overrides(exp: &str) -> (Option<usize>, Option<usize>, Option<usize>) {
    let (mut assoc, mut batch, mut adus) = (None, None, None);
    let mut args = std::env::args().skip(2);
    while let Some(flag) = args.next() {
        let slot = match flag.as_str() {
            "--assoc" => &mut assoc,
            "--batch" => &mut batch,
            "--adus" => &mut adus,
            other => {
                eprintln!(
                    "{exp}: unknown argument '{other}' — expected \
                     `harness {exp} [--assoc N] [--batch M] [--adus K]`"
                );
                std::process::exit(2);
            }
        };
        *slot = match args.next().as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) if n > 0 => Some(n),
            got => {
                eprintln!(
                    "{exp}: bad value for {flag} ({got:?}) — expected a \
                     positive count, e.g. `harness {exp} --assoc 512`"
                );
                std::process::exit(2);
            }
        };
    }
    (assoc, batch, adus)
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let all = which == "all";
    if !all && !EXPERIMENTS.contains(&which.as_str()) {
        eprintln!(
            "unknown experiment '{which}'; expected 'all' or one of: {}",
            EXPERIMENTS.join(", ")
        );
        std::process::exit(2);
    }
    if all || which == "t1" {
        t1_kernels();
    }
    if all || which == "e2" {
        e2_fusion();
    }
    if all || which == "e3" {
        e3_presentation();
    }
    if all || which == "e4" {
        e4_stack();
    }
    if all || which == "e5" {
        e5_convert_checksum();
    }
    if all || which == "t2" {
        t2_control_vs_manipulation();
    }
    if all || which == "x1" {
        x1_head_of_line();
    }
    if all || which == "x2" {
        x2_ilp_stages();
    }
    if all || which == "x3" {
        x3_atm();
    }
    if all || which == "x4" {
        x4_recovery_modes();
    }
    if all || which == "x5" {
        x5_parallel_sink();
    }
    if all || which == "x6" {
        x6_fec();
    }
    if all || which == "x7" {
        x7_adaptive_control();
    }
    if all || which == "x8" {
        // `harness x8 [budget_kib]`: optional receive-budget override.
        let budget_kib = match std::env::args().nth(2) {
            None => 64,
            Some(_) if which != "x8" => 64,
            Some(s) => match s.parse::<usize>() {
                Ok(k) if k > 0 => k,
                _ => {
                    eprintln!(
                        "x8: bad budget '{s}' — expected a positive receive \
                         budget in KiB, e.g. `harness x8 64`"
                    );
                    std::process::exit(2);
                }
            },
        };
        x8_robustness(budget_kib);
    }
    if all || which == "x9" {
        x9_telemetry();
    }
    if all || which == "x10" {
        x10_zero_copy();
    }
    if all || which == "x11" {
        x11_lifecycle_spans();
    }
    if all || which == "x12" {
        x12_hostile_wire();
    }
    if all || which == "x13" {
        // `harness x13 [--assoc N] [--batch M] [--adus K]`: smoke
        // overrides — run one small point instead of the full 1 → 1k →
        // 100k sweep (and leave the committed BENCH_x13.json baseline
        // alone).
        let (assoc, batch, adus) = if which == "x13" {
            cluster_overrides("x13")
        } else {
            (None, None, None)
        };
        x13_many_assoc(assoc, batch, adus);
    }
    if all || which == "x14" {
        // Same smoke-override shape as x13: a small armed point instead
        // of the full 100k overhead comparison.
        let (assoc, batch, adus) = if which == "x14" {
            cluster_overrides("x14")
        } else {
            (None, None, None)
        };
        x14_observability(assoc, batch, adus);
    }
}

fn heading(id: &str, title: &str, paper: &str) {
    println!("\n=== {id}: {title} ===");
    println!("paper: {paper}\n");
}

// ---------------------------------------------------------------------
// T1 — Table 1: copy and checksum speeds
// ---------------------------------------------------------------------

fn t1_kernels() {
    heading(
        "T1",
        "manipulation kernel speeds (Table 1)",
        "uVax copy 42 / checksum 60 Mb/s; R2000 copy 130 / checksum 115 Mb/s \
         — both memory-bound, same order of magnitude",
    );
    let src = byte_workload(PACKET_BYTES);
    let mut dst = vec![0u8; PACKET_BYTES];

    let mut t = Table::new(&["kernel", "Mb/s"]);
    for kind in [
        CopyKind::Memcpy,
        CopyKind::ByteRolled,
        CopyKind::Word,
        CopyKind::WordUnrolled,
    ] {
        let rate = time_mbps(PACKET_BYTES, || kind.run(&src, &mut dst));
        t.row(&[format!("copy/{}", kind.name()), fmt_f(rate)]);
    }
    let r = time_mbps(PACKET_BYTES, || {
        std::hint::black_box(internet_checksum(&src));
    });
    t.row(&["checksum/internet-rolled".into(), fmt_f(r)]);
    let r = time_mbps(PACKET_BYTES, || {
        std::hint::black_box(internet_checksum_unrolled(&src));
    });
    t.row(&["checksum/internet-unrolled-4".into(), fmt_f(r)]);
    let r = time_mbps(PACKET_BYTES, || {
        std::hint::black_box(fletcher32(&src));
    });
    t.row(&["checksum/fletcher32".into(), fmt_f(r)]);
    let r = time_mbps(PACKET_BYTES, || {
        std::hint::black_box(adler32(&src));
    });
    t.row(&["checksum/adler32".into(), fmt_f(r)]);
    let r = time_mbps(PACKET_BYTES, || {
        std::hint::black_box(crc32(&src));
    });
    t.row(&["checksum/crc32".into(), fmt_f(r)]);
    print!("{}", t.render());
}

// ---------------------------------------------------------------------
// E2 — fused copy+checksum vs serial passes
// ---------------------------------------------------------------------

fn e2_fusion() {
    heading(
        "E2",
        "ILP fusion: copy+checksum in one pass (S4)",
        "copy 130, checksum 115 => serial-effective ~60 Mb/s; fused loop 90 Mb/s (1.5x)",
    );
    // The fusion win is a *memory-pass* win: on a 1990 RISC every pass paid
    // DRAM cost; on a modern CPU a 4 kB packet lives in L1 and extra passes
    // are nearly free. Sweeping the working-set size recreates the paper's
    // regime at the bottom rows (buffers past the LLC).
    let mut t = Table::new(&[
        "working set",
        "copy",
        "checksum",
        "serial eff.",
        "serial meas.",
        "fused",
        "speedup",
    ]);
    for (label, size) in [
        ("4 kB (L1, paper's packet)", PACKET_BYTES),
        ("256 kB (L2)", 256 * 1024),
        ("8 MB (LLC)", 8 * 1024 * 1024),
        ("128 MB (DRAM)", 128 * 1024 * 1024),
    ] {
        let src = byte_workload(size);
        let mut dst = vec![0u8; size];
        let copy = time_mbps(size, || ct_wire::copy::copy_words_unrolled(&src, &mut dst));
        let cksum = time_mbps(size, || {
            std::hint::black_box(internet_checksum_unrolled(&src));
        });
        let serial_measured = time_mbps(size, || {
            ct_wire::copy::copy_words_unrolled(&src, &mut dst);
            std::hint::black_box(internet_checksum_unrolled(&dst));
        });
        let fused = time_mbps(size, || {
            std::hint::black_box(copy_and_checksum(&src, &mut dst));
        });
        t.row(&[
            label.into(),
            fmt_f(copy),
            fmt_f(cksum),
            fmt_f(serial_effective_mbps(copy, cksum)),
            fmt_f(serial_measured),
            fmt_f(fused),
            format!("{}x", fmt_f(fused / serial_measured)),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nAll rates in Mb/s. 'serial eff.' is the paper's 1/(1/copy + 1/checksum)\n\
         arithmetic; 'speedup' is fused vs serial-measured. The paper's 1.5x\n\
         appears where the working set no longer fits in cache."
    );
}

// ---------------------------------------------------------------------
// E3 — presentation conversion vs copy
// ---------------------------------------------------------------------

fn e3_presentation() {
    heading(
        "E3",
        "presentation conversion cost (S4)",
        "R2000: word copy 130 Mb/s vs hand-coded ASN.1 integer-array \
         conversion 28 Mb/s — a factor of 4-5",
    );
    let ints = u32_workload(PACKET_BYTES / 4);
    let app_bytes = ints.len() * 4;
    let src = byte_workload(PACKET_BYTES);
    let mut dst = vec![0u8; PACKET_BYTES];

    let copy = time_mbps(app_bytes, || {
        ct_wire::copy::copy_words_unrolled(&src, &mut dst)
    });
    let ber_wire = ber::encode_u32_array(&ints);
    let xdr_wire = xdr::encode_u32_array(&ints);
    let lwts_wire = lwts::encode_u32_array(&ints);

    let mut t = Table::new(&["conversion", "Mb/s", "vs copy"]);
    t.row(&["word copy (baseline)".into(), fmt_f(copy), "1.0x".into()]);
    let mut add = |name: &str, rate: f64| {
        t.row(&[name.into(), fmt_f(rate), format!("{}x", fmt_f(copy / rate))]);
    };
    add(
        "BER encode (int array)",
        time_mbps(app_bytes, || {
            std::hint::black_box(ber::encode_u32_array(&ints));
        }),
    );
    add(
        "BER decode (int array)",
        time_mbps(app_bytes, || {
            std::hint::black_box(ber::decode_u32_array(&ber_wire).unwrap());
        }),
    );
    add(
        "XDR encode",
        time_mbps(app_bytes, || {
            std::hint::black_box(xdr::encode_u32_array(&ints));
        }),
    );
    add(
        "XDR decode",
        time_mbps(app_bytes, || {
            std::hint::black_box(xdr::decode_u32_array(&xdr_wire).unwrap());
        }),
    );
    add(
        "LWTS encode",
        time_mbps(app_bytes, || {
            std::hint::black_box(lwts::encode_u32_array(&ints));
        }),
    );
    add(
        "LWTS decode",
        time_mbps(app_bytes, || {
            std::hint::black_box(lwts::decode_u32_array(&lwts_wire).unwrap());
        }),
    );
    print!("{}", t.render());
}

// ---------------------------------------------------------------------
// E4 — full layered stack: presentation dominates
// ---------------------------------------------------------------------

fn e4_stack() {
    heading(
        "E4",
        "full layered stack, OCTET STRING vs INTEGER array (S4)",
        "TCP+ISODE: ~97% of stack overhead attributable to presentation; \
         conversion-intensive case ~30x slower",
    );
    let n_records = 40;
    let ints_per_record = 8000; // 32 kB of application data per record
    let octets: Vec<Record> = (0..n_records)
        .map(|i| Record::Octets(byte_workload(ints_per_record * 4 + i)))
        .collect();
    let int_arrays: Vec<Record> = (0..n_records)
        .map(|_| Record::U32Array(u32_workload(ints_per_record)))
        .collect();

    let base = run_layered_transfer(
        11,
        LinkConfig::gigabit(),
        FaultConfig::none(),
        StackConfig {
            syntax: TransferSyntax::Ber,
            ..StackConfig::default()
        },
        &octets,
    );
    let conv = run_layered_transfer(
        11,
        LinkConfig::gigabit(),
        FaultConfig::none(),
        StackConfig {
            syntax: TransferSyntax::Ber,
            ..StackConfig::default()
        },
        &int_arrays,
    );
    // The paper's other data point: its hand-coded conversion routine
    // (4-5x vs copy) — our tuned array fast path plays that role.
    let tuned = run_layered_transfer(
        11,
        LinkConfig::gigabit(),
        FaultConfig::none(),
        StackConfig {
            syntax: TransferSyntax::Ber,
            generic_presentation: false,
            ..StackConfig::default()
        },
        &int_arrays,
    );
    assert!(
        base.complete && conv.complete && tuned.complete,
        "stack runs must complete"
    );

    let mut t = Table::new(&[
        "workload",
        "stack CPU Mb/s",
        "presentation %",
        "crypto %",
        "transport %",
    ]);
    for (name, rep) in [
        ("OCTET STRING (no conversion)", &base),
        ("INTEGER array (generic BER)", &conv),
        ("INTEGER array (hand-tuned BER)", &tuned),
    ] {
        let total = rep.times.total();
        t.row(&[
            name.into(),
            fmt_f(rep.cpu_mbps),
            format!("{:.1}%", 100.0 * rep.times.presentation / total),
            format!("{:.1}%", 100.0 * rep.times.crypto / total),
            format!("{:.1}%", 100.0 * rep.times.transport / total),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nconversion-intensive slowdown: generic {}x, hand-tuned {}x \
         (paper's range: ~30x untuned ISODE ... 4-5x hand-coded)",
        fmt_f(base.cpu_mbps / conv.cpu_mbps),
        fmt_f(base.cpu_mbps / tuned.cpu_mbps),
    );
    println!(
        "presentation share of conversion-intensive stack: {:.1}% (paper: ~97% untuned)",
        100.0 * conv.times.presentation_fraction()
    );
}

// ---------------------------------------------------------------------
// E5 — conversion fused with checksum
// ---------------------------------------------------------------------

fn e5_convert_checksum() {
    heading(
        "E5",
        "conversion fused with checksum (S4)",
        "BER conversion alone 28 Mb/s; conversion+checksum in one step 24 Mb/s \
         (~14% slower, i.e. integrity nearly free once the bytes are hot)",
    );
    let ints = u32_workload(PACKET_BYTES / 4);
    let app_bytes = ints.len() * 4;

    let mut t = Table::new(&["configuration", "Mb/s", "slowdown"]);
    let mut pair = |name: &str, alone: f64, fused: f64| {
        t.row(&[format!("{name} alone"), fmt_f(alone), String::new()]);
        t.row(&[
            format!("{name} + checksum fused"),
            fmt_f(fused),
            format!("{:.1}%", 100.0 * (1.0 - fused / alone)),
        ]);
    };

    let ber_alone = time_mbps(app_bytes, || {
        std::hint::black_box(ber::encode_u32_array(&ints));
    });
    let ber_fused = time_mbps(app_bytes, || {
        std::hint::black_box(pfused::ber_encode_u32s_checksummed(&ints));
    });
    pair("BER encode", ber_alone, ber_fused);

    let xdr_alone = time_mbps(app_bytes, || {
        std::hint::black_box(xdr::encode_u32_array(&ints));
    });
    let xdr_fused = time_mbps(app_bytes, || {
        std::hint::black_box(pfused::xdr_encode_u32s_checksummed(&ints));
    });
    pair("XDR encode", xdr_alone, xdr_fused);

    // The layered alternative: conversion pass then a separate checksum pass.
    let ber_two_pass = time_mbps(app_bytes, || {
        let wire = ber::encode_u32_array(&ints);
        std::hint::black_box(internet_checksum(&wire));
    });
    t.row(&[
        "BER encode, separate checksum pass".into(),
        fmt_f(ber_two_pass),
        format!("{:.1}%", 100.0 * (1.0 - ber_two_pass / ber_alone)),
    ]);
    print!("{}", t.render());
}

// ---------------------------------------------------------------------
// T2 — control cost vs manipulation cost
// ---------------------------------------------------------------------

fn t2_control_vs_manipulation() {
    heading(
        "T2",
        "in-band control vs data manipulation (S4)",
        "control path lengths are tens of instructions; manipulation touches \
         1000 words per 4000-byte packet — manipulation dominates",
    );
    // Control path: a receiver processing one pure ACK (no payload).
    let mut sender = StreamTransport::new(StreamConfig::default(), 1, 2);
    sender.send(&byte_workload(1400));
    let _ = sender.poll(ct_netsim::time::SimTime::ZERO);
    let ack = Segment {
        src_port: 2,
        dst_port: 1,
        seq: 0,
        ack: 0, // duplicate ack of nothing: cheapest valid control input
        flags: ct_transport::segment::FLAG_ACK,
        window: 65535,
        payload: vec![].into(),
    }
    .encode();
    let ack_ns = time_ns_per_call(|| {
        sender.on_segment(ct_netsim::time::SimTime::ZERO, &ack);
    });
    // The ACK segment itself is checksummed on arrival (30 bytes); subtract
    // nothing — report both raw and header-checksum-free figures.
    let hdr_ck_ns = time_ns_per_call(|| {
        std::hint::black_box(internet_checksum(&ack));
    });

    // Manipulation path: checksum + copy of a 4000-byte packet.
    let src = byte_workload(PACKET_BYTES);
    let mut dst = vec![0u8; PACKET_BYTES];
    let manip_ns = time_ns_per_call(|| {
        std::hint::black_box(copy_and_checksum(&src, &mut dst));
    });

    let mut t = Table::new(&["operation", "ns/packet"]);
    t.row(&["transfer control: process pure ACK".into(), fmt_f(ack_ns)]);
    t.row(&[
        "  (of which 30-byte header checksum)".into(),
        fmt_f(hdr_ck_ns),
    ]);
    t.row(&[
        format!("data manipulation: copy+checksum {PACKET_BYTES} B"),
        fmt_f(manip_ns),
    ]);
    print!("{}", t.render());
    println!(
        "\nmanipulation / control ratio: {}x (paper: 'tens of instructions' vs \
         'thousands of memory cycles')",
        fmt_f(manip_ns / ack_ns)
    );
}

// ---------------------------------------------------------------------
// X1 — head-of-line blocking: layered stream vs ALF
// ---------------------------------------------------------------------

fn x1_head_of_line() {
    heading(
        "X1",
        "head-of-line blocking under loss: byte stream vs ALF (S5)",
        "qualitative claim: 'a lost packet stops the application from \
         performing presentation conversion'; ALF's out-of-order ADUs keep \
         the pipeline busy",
    );
    let adu_bytes = 4000;
    let n_adus = 250;
    let stream_payload = byte_workload(adu_bytes * n_adus);
    let adus = seq_workload(n_adus, adu_bytes);

    let mut t = Table::new(&[
        "loss",
        "TCP time",
        "TCP HOL total",
        "TCP HOL max",
        "ALF time",
        "ALF lat max",
        "ALF ooo",
    ]);
    for loss_pct in [0.0, 1.0, 2.0, 5.0, 10.0] {
        let faults = FaultConfig::loss(loss_pct / 100.0);
        let tcp: TransferReport = run_transfer(
            100 + loss_pct as u64,
            LinkConfig::lan(),
            faults,
            StreamConfig::default(),
            &stream_payload,
        );
        let alf = run_alf_transfer(
            100 + loss_pct as u64,
            LinkConfig::lan(),
            faults,
            AlfConfig {
                // Timers scaled to the LAN RTT (~0.3 ms), as TCP's RTT
                // estimator does automatically.
                retransmit_timeout: SimDuration::from_millis(5),
                assembly_timeout: SimDuration::from_millis(2),
                ..AlfConfig::default()
            },
            Substrate::Packet,
            &adus,
            None,
        );
        assert!(tcp.complete, "tcp must complete at {loss_pct}%");
        assert!(
            alf.complete && alf.verified,
            "alf must complete at {loss_pct}%"
        );
        t.row(&[
            format!("{loss_pct}%"),
            format!("{}", tcp.elapsed),
            format!("{}", tcp.receiver.hol_delay_total),
            format!("{}", tcp.receiver.hol_delay_max),
            format!("{}", alf.elapsed),
            format!("{}", alf.latency_max),
            format!("{}", alf.receiver.adus_delivered_out_of_order),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nTCP 'HOL' columns: total/max time in-order delivery stalled behind a gap.\n\
         ALF 'lat max': worst single-ADU completion latency — it includes that ADU's\n\
         own repair time but never the recovery of unrelated data. 'ooo': ADUs\n\
         delivered out of order (each would have been a stall in the byte stream)."
    );
}

// ---------------------------------------------------------------------
// X2 — ILP gain vs number of stages
// ---------------------------------------------------------------------

fn x2_ilp_stages() {
    heading(
        "X2",
        "integrated vs layered execution as stages accumulate (S6)",
        "'an integrated processing loop is more efficient than several \
         separate steps which read the data from memory, possibly convert \
         it, and write it again' — the gap should grow with stage count",
    );
    let input = byte_workload(PACKET_BYTES);
    let mut t = Table::new(&["stages", "layered Mb/s", "integrated Mb/s", "speedup"]);
    for n in 1..=4 {
        let p = canonical_receive_chain(n, 0xC1A);
        let lay = time_mbps(PACKET_BYTES, || {
            std::hint::black_box(p.run_layered(&input));
        });
        let int = time_mbps(PACKET_BYTES, || {
            std::hint::black_box(p.run_integrated(&input));
        });
        let names: Vec<&str> = p.stages().iter().map(|s| s.name()).collect();
        t.row(&[
            format!("{n}: {}", names.join("+")),
            fmt_f(lay),
            fmt_f(int),
            format!("{}x", fmt_f(int / lay)),
        ]);
    }
    print!("{}", t.render());
}

// ---------------------------------------------------------------------
// X3 — ADUs over ATM cells: loss amplification
// ---------------------------------------------------------------------

fn x3_atm() {
    heading(
        "X3",
        "ADUs over ATM cells: whole-ADU loss from single-cell loss (S5)",
        "48-byte cells (44 net after adaptation) are 'too small a unit ... to \
         permit manipulation operations to be synchronized on each cell'; \
         P[ADU lost] = 1-(1-p)^cells grows with ADU size",
    );
    let mut t = Table::new(&[
        "ADU bytes",
        "cells/ADU",
        "cell loss",
        "predicted ADU survival",
        "measured",
        "goodput Mb/s",
    ]);
    for adu_bytes in [512usize, 4096, 16384] {
        for cell_loss in [0.0001, 0.001, 0.01] {
            let n_adus = 120;
            let adus = seq_workload(n_adus, adu_bytes);
            let cfg = AlfConfig {
                recovery: RecoveryMode::NoRetransmit,
                assembly_timeout: SimDuration::from_millis(20),
                mtu_payload: 1400,
                ..AlfConfig::default()
            };
            let r = run_alf_transfer(
                (adu_bytes + (cell_loss * 1e6) as usize) as u64,
                LinkConfig::gigabit(),
                FaultConfig::loss(cell_loss),
                cfg,
                Substrate::Atm,
                &adus,
                None,
            );
            assert!(r.verified);
            // Cells per ADU: each TU of <=1400+34 B becomes cells.
            let tus = adu_bytes.div_ceil(1400).max(1);
            let full_tus = adu_bytes / 1400;
            let tail = adu_bytes - full_tus * 1400;
            let mut cells = full_tus * ct_netsim::atm::cells_for(1400 + 34);
            if tail > 0 || full_tus == 0 {
                cells += ct_netsim::atm::cells_for(tail + 34);
            }
            let predicted = (1.0 - cell_loss).powi(cells as i32);
            let measured = r.adus_delivered as f64 / n_adus as f64;
            t.row(&[
                format!("{adu_bytes}"),
                format!("{cells} ({tus} TU)"),
                format!("{cell_loss}"),
                format!("{:.3}", predicted),
                format!("{:.3}", measured),
                fmt_f(r.goodput_mbps),
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "\nWith retransmission (TransportBuffer) the same cell-loss rates deliver 100%\n\
         at a latency cost; see X4. Framing overhead: 53/44 cell tax plus 34-byte TU\n\
         header per 1400-byte fragment."
    );
}

// ---------------------------------------------------------------------
// X4 — the three recovery modes
// ---------------------------------------------------------------------

fn x4_recovery_modes() {
    heading(
        "X4",
        "loss recovery: sender buffering vs app recompute vs none (S5)",
        "'A general purpose data transfer protocol ought to permit any of \
         these options to be selected' — each has a distinct cost signature",
    );
    let adu_bytes = 4000;
    let n_adus = 150;
    let adus = seq_workload(n_adus, adu_bytes);
    let oracle = move |name: AduName| match name {
        AduName::Seq { index } => workload_payload(index, adu_bytes),
        _ => unreachable!(),
    };
    let mut t = Table::new(&[
        "mode",
        "delivered",
        "time",
        "sender buffer peak",
        "whole retx",
        "selective TUs",
        "probes",
        "recompute reqs",
    ]);
    for (name, mode) in [
        ("TransportBuffer", RecoveryMode::TransportBuffer),
        ("AppRecompute", RecoveryMode::AppRecompute),
        ("NoRetransmit", RecoveryMode::NoRetransmit),
    ] {
        let cfg = AlfConfig {
            recovery: mode,
            assembly_timeout: SimDuration::from_millis(10),
            ..AlfConfig::default()
        };
        let r = run_alf_transfer(
            777,
            LinkConfig::lan(),
            FaultConfig::loss(0.02),
            cfg,
            Substrate::Packet,
            &adus,
            Some(&oracle),
        );
        assert!(r.verified, "{name}");
        t.row(&[
            name.into(),
            format!("{}/{}", r.adus_delivered, n_adus),
            format!("{}", r.elapsed),
            format!("{} B", r.sender_buffer_peak),
            format!("{}", r.sender.adus_retransmitted),
            format!("{}", r.sender.tus_retransmitted_selective),
            format!("{}", r.sender.probe_tus),
            format!("{}", r.sender.recompute_requests),
        ]);
    }
    print!("{}", t.render());
}

// ---------------------------------------------------------------------
// X5 — parallel-processor delivery
// ---------------------------------------------------------------------

fn x5_parallel_sink() {
    heading(
        "X5",
        "parallel-processor delivery: self-routing ADUs vs stream resplit (S7)",
        "'lacking such a [hot] spot, there is no place to connect a high-speed \
         serial network' — the stream splitter is that hot spot; ADUs remove it",
    );
    let units_per_shard = 256;
    let unit_bytes = 8192;
    let mut t = Table::new(&[
        "shards",
        "ALF direct Mb/s",
        "split+parallel Mb/s",
        "fully serial Mb/s",
        "ALF advantage",
    ]);
    for shards in [1u16, 2, 4, 8] {
        let adus = shard_workload(shards, units_per_shard, unit_bytes);
        let total_bytes: usize = adus.iter().map(|a| a.payload.len()).sum();
        let stream = serialize_stream(&adus);

        // The ALF property: the *network* already delivered each ADU to its
        // shard (the name controlled its delivery), so partitioning is not
        // part of the receive path. Build the per-shard views once, then
        // measure the shards consuming in parallel.
        let mut partitioned: Vec<Vec<(u32, &[u8])>> = vec![Vec::new(); shards as usize];
        for adu in &adus {
            if let AduName::Shard { shard, index } = adu.name {
                partitioned[shard as usize].push((index, adu.payload.as_slice()));
            }
        }
        let alf_rate = time_mbps(total_bytes, || {
            std::thread::scope(|scope| {
                for part in &partitioned {
                    scope.spawn(move || {
                        std::hint::black_box(consume_batch(part.iter().copied()).digest);
                    });
                }
            });
        });

        // Byte-stream with the best engineering available to it: one serial
        // splitter parses every header and copies every body into per-shard
        // queues, then the shards consume in parallel. The splitter is the
        // aggregate-rate hot spot.
        let split_parallel_rate = time_mbps(total_bytes, || {
            let mut queues: Vec<Vec<(u32, Vec<u8>)>> = vec![Vec::new(); shards as usize];
            for_each_record(&stream, |shard, index, body| {
                queues[shard as usize].push((index, body.to_vec()));
            });
            std::thread::scope(|scope| {
                for q in &queues {
                    scope.spawn(move || {
                        std::hint::black_box(
                            consume_batch(q.iter().map(|(i, b)| (*i, b.as_slice()))).digest,
                        );
                    });
                }
            });
        });

        // And the naive fully serial resplit.
        let serial_rate = time_mbps(total_bytes, || {
            let mut splitter = StreamResplitter::new(shards as usize);
            splitter.ingest_stream(&stream);
            std::hint::black_box(splitter.sink().total_bytes());
        });

        t.row(&[
            format!("{shards}"),
            fmt_f(alf_rate),
            fmt_f(split_parallel_rate),
            fmt_f(serial_rate),
            format!("{}x", fmt_f(alf_rate / split_parallel_rate)),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nALF: the network delivered each self-routing ADU to its shard; shards\n\
         consume in parallel with no shared stage. split+parallel: a serial splitter\n\
         parses and copies every record before parallel consumption — its throughput\n\
         ceiling is the splitter. fully serial: parse and consume on one core."
    );
}

// ---------------------------------------------------------------------
// X6 — ADU-level FEC ablation
// ---------------------------------------------------------------------

fn x6_fec() {
    heading(
        "X6",
        "ADU-level FEC: parity vs retransmission vs nothing (S5 fn.10)",
        "'lower layer recovery schemes, such as forward error correction (FEC), \
         may be applied to these transmission units ... ADU-level FEC' — parity \
         trades constant wire overhead for loss repair without a round trip",
    );
    let n_adus = 200;
    let adu_bytes = 8400; // 6 TUs at the default MTU
    let adus = seq_workload(n_adus, adu_bytes);
    let mut t = Table::new(&[
        "loss",
        "FEC group",
        "delivered",
        "wire TUs",
        "reconstructions",
        "latency mean",
    ]);
    for loss in [0.01, 0.03, 0.05] {
        for fec_group in [0usize, 8, 4, 2] {
            let r = run_alf_transfer(
                600 + (loss * 1000.0) as u64,
                LinkConfig::lan(),
                FaultConfig::loss(loss),
                AlfConfig {
                    recovery: RecoveryMode::NoRetransmit,
                    assembly_timeout: SimDuration::from_millis(5),
                    fec_group,
                    ..AlfConfig::default()
                },
                Substrate::Packet,
                &adus,
                None,
            );
            assert!(r.verified);
            t.row(&[
                format!("{}%", loss * 100.0),
                if fec_group == 0 {
                    "off".into()
                } else {
                    format!("1/{fec_group}")
                },
                format!("{}/{}", r.adus_delivered, n_adus),
                format!("{}", r.sender.tus_sent),
                format!("{}", r.receiver.fec_reconstructions),
                format!("{}", r.latency_mean),
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "\nNo-retransmission (real-time) flows: FEC group 1/k adds k-th parity\n\
         overhead ('wire TUs') and repairs single-erasure groups in place —\n\
         delivery climbs toward 100% without any retransmission round trip."
    );
}

// ---------------------------------------------------------------------
// X7 — adaptive transfer control vs fixed timers
// ---------------------------------------------------------------------

fn x7_adaptive_control() {
    heading(
        "X7",
        "adaptive transfer control: RTT-driven RTO + AIMD window + rate pacing (S3)",
        "'the flow control mechanism of the next generation of protocol should be \
         rate based' with transmission control 'computed out-of-band' — here the \
         out-of-band controller is driven by ACK timestamp echoes: Jacobson/Karels \
         RTO, an ADU-unit congestion window, and pacing at the measured delivery rate",
    );
    let n_adus = 200;
    let adu_bytes = 1400; // one TU per ADU
    let adus = seq_workload(n_adus, adu_bytes);
    // The token bucket passes 4 frames per 10 ms: 400 × 1400 B/s of payload.
    let bottleneck_mbps = 400.0 * adu_bytes as f64 * 8.0 / 1e6;
    let scenarios: [(&str, FaultConfig); 3] = [
        ("clean", FaultConfig::none()),
        ("loss 1%", FaultConfig::loss(0.01)),
        (
            "bottleneck 4.48 Mb/s",
            FaultConfig::rate_limited(4, SimDuration::from_millis(10)),
        ),
    ];
    let mut t = Table::new(&[
        "scenario",
        "control",
        "goodput",
        "vs bottleneck",
        "elapsed",
        "retx",
        "srtt",
        "rto",
        "cwnd peak",
        "loss ev",
        "est rate",
    ]);
    for (label, faults) in scenarios {
        for adaptive in [false, true] {
            let r = run_alf_transfer(
                7,
                LinkConfig::lan(),
                faults,
                AlfConfig {
                    adaptive,
                    ..AlfConfig::default()
                },
                Substrate::Packet,
                &adus,
                None,
            );
            assert!(r.complete && r.verified, "{label} adaptive={adaptive}");
            let s = &r.sender;
            let vs = if label.starts_with("bottleneck") {
                format!("{:.0}%", r.goodput_mbps / bottleneck_mbps * 100.0)
            } else {
                "-".into()
            };
            t.row(&[
                label.into(),
                if adaptive {
                    "adaptive".into()
                } else {
                    "fixed 50ms".into()
                },
                format!("{} Mb/s", fmt_f(r.goodput_mbps)),
                vs,
                format!("{}", r.elapsed),
                format!("{}", s.adus_retransmitted),
                if s.rtt_samples > 0 {
                    format!("{:.0}us", s.srtt_us)
                } else {
                    "-".into()
                },
                if s.rto_us > 0.0 {
                    format!("{:.0}us", s.rto_us)
                } else {
                    "50000us".into()
                },
                format!("{:.1}", s.cwnd_peak_adus),
                format!("{}", s.loss_events),
                if s.delivery_rate_mbps > 0.0 {
                    format!("{} Mb/s", fmt_f(s.delivery_rate_mbps))
                } else {
                    "-".into()
                },
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "\nFixed timers blast at link pace and stall 50 ms per loss; the adaptive\n\
         sender measures the RTT from ACK echoes (RTO ~ srtt + 4*rttvar), halves\n\
         its ADU window per loss round, and paces at the delivery rate it actually\n\
         observes — converging to the token-bucket bottleneck from above."
    );
}

// ---------------------------------------------------------------------
// X8 — robustness: partitions, dead peers, receiver flow control
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// X9 — observability: the data-touch ledger and the flight recorder
// ---------------------------------------------------------------------

fn x9_telemetry() {
    heading(
        "X9",
        "observability: memory passes per delivered byte, layered vs integrated",
        "'the throughput of the system is more and more limited by the memory \
         bandwidth' (\u{a7}6) — ct-telemetry's data-touch ledger turns the pass \
         count from an estimate into a measurement, and the flight recorder \
         replaces printf archaeology when a run misbehaves",
    );

    // Part 1: every kernel reports its traversals to the ledger; divide by
    // delivered bytes and the ILP claim becomes a measured number.
    let input: Vec<u8> = (0..64 * 1024)
        .map(|i: usize| (i.wrapping_mul(197) ^ (i >> 3)) as u8)
        .collect();
    let mut t = Table::new(&[
        "stages",
        "layered passes/B",
        "integrated passes/B",
        "layered/integrated",
    ]);
    let mut deepest: Option<TouchLedger> = None;
    for n in 1..=4usize {
        let p = canonical_receive_chain(n, 0xFEED);
        let lay = TouchLedger::new();
        let int = TouchLedger::new();
        let a = p.run_layered_ledgered(&input, &lay);
        let b = p.run_integrated_ledgered(&input, &int);
        assert_eq!(a, b, "the two engineerings must be bit-identical");
        lay.deliver(input.len() as u64);
        int.deliver(input.len() as u64);
        let (lp, ip) = (
            lay.passes_per_delivered_byte(),
            int.passes_per_delivered_byte(),
        );
        assert!(
            ip < lp,
            "integrated must touch strictly fewer bytes at n={n}: {ip} !< {lp}"
        );
        t.row(&[
            format!("{n}"),
            format!("{lp:.3}"),
            format!("{ip:.3}"),
            format!("{:.2}x", lp / ip),
        ]);
        if n == 4 {
            deepest = Some(lay);
        }
    }
    print!("{}", t.render());
    println!(
        "
per-stage ledger of the 4-stage layered chain:"
    );
    println!("{}", deepest.expect("n=4 ran").render());

    // Part 2: a telemetry-enabled ALF run over a lossy link — the registry
    // and the tail of the flight recorder, as a failure dump would show it.
    let tel = Telemetry::with_tracing(256);
    let adus = seq_workload(30, 4000);
    let r = run_alf_transfer_scenario(
        9,
        LinkConfig::lan(),
        FaultConfig::loss(0.03),
        AlfConfig::default(),
        Substrate::Packet,
        &adus,
        None,
        &ScenarioOpts {
            telemetry: Some(tel.clone()),
            ..ScenarioOpts::default()
        },
    );
    assert!(r.complete && r.verified, "telemetry run failed: {r:?}");
    println!("metrics registry after a 30-ADU transfer at 3% loss:");
    print!("{}", tel.metrics().render_text());
    println!(
        "
flight recorder: last 8 of {} events ({} overwritten):",
        tel.trace_len(),
        tel.trace_overwritten()
    );
    print!("{}", tel.trace_dump_last(8));
    println!(
        "
The integrated pass count stays flat at 2 passes per delivered byte\n\
         while the layered chain climbs by 2 per stage: exactly the memory\n\
         traffic \u{a7}6 says dominates. The registry and recorder cost nothing\n\
         when disarmed (the overhead guard in tests/telemetry.rs pins the\n\
         counters-on fast path under 2% of E2 throughput)."
    );
}

// ---------------------------------------------------------------------
// X10 — zero-copy datapath: end-to-end memory passes per delivered byte
// ---------------------------------------------------------------------

/// Passes per delivered byte contributed by one ledger stage (0 if the
/// stage never reported — itself a meaningful result for the copy stages
/// the zero-copy datapath eliminates).
fn stage_passes_per_byte(tel: &Telemetry, stage: &str) -> f64 {
    let delivered = tel.ledger().delivered();
    if delivered == 0 {
        return 0.0;
    }
    tel.ledger()
        .stages()
        .iter()
        .find(|s| s.stage == stage)
        .map(|s| (s.reads + s.writes) as f64 / delivered as f64)
        .unwrap_or(0.0)
}

fn x10_zero_copy() {
    heading(
        "X10",
        "zero-copy ADU datapath: end-to-end memory passes per delivered byte",
        "'the flow of data within the end-point should be organized so that the \
         data is touched as few times as possible' (\u{a7}6) — the WireBuf \
         datapath leaves three countable touches: the fused TU encode (one \
         read, one write, checksum folded into the sweep), the in-place \
         receive verify (one read), and a gather copy only when an ADU \
         arrived in more than one frame. Every touch is booked in the \
         data-touch ledger, so the pass count below is measured, not claimed",
    );

    const ADUS: usize = 40;
    const ADU_BYTES: usize = 8 * 1024;

    // Baseline: the layered stream stack moves every byte once per layer —
    // presentation encode, transport send copy, receive copy, deframe,
    // presentation decode — even with conversion and crypto turned off.
    let tel_lay = Telemetry::new();
    let records: Vec<Record> = (0..ADUS)
        .map(|i| Record::Octets(workload_payload(i as u64, ADU_BYTES)))
        .collect();
    let lay = run_layered_transfer_telemetry(
        11,
        LinkConfig::lan(),
        FaultConfig::none(),
        StackConfig {
            encrypt: false,
            ..StackConfig::default()
        },
        &records,
        Some(&tel_lay),
    );
    assert!(
        lay.complete,
        "layered baseline must complete on a clean link"
    );
    let lay_e2e = tel_lay.ledger().passes_per_delivered_byte();

    let mut t = Table::new(&[
        "path",
        "send p/B",
        "verify p/B",
        "gather p/B",
        "decode copy p/B",
        "e2e p/B",
    ]);
    t.row(&[
        "layered stream stack".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{lay_e2e:.3}"),
    ]);

    let mut json_rows = vec![format!(
        "    {{\"path\": \"layered\", \"e2e_passes_per_byte\": {lay_e2e:.4}}}"
    )];
    let mut clean_send = f64::NAN;
    let mut clean_e2e = f64::NAN;
    let mut single_frame_gather = f64::NAN;
    // 8 KiB ADUs fragment ~6 ways (the gather pass is honest work); 1200-byte
    // ADUs fit one frame and exercise the view-through release.
    for (label, adu_bytes, faults) in [
        ("alf zero-copy, clean", ADU_BYTES, FaultConfig::none()),
        ("alf zero-copy, 3% loss", ADU_BYTES, FaultConfig::loss(0.03)),
        ("alf zero-copy, 1-frame ADUs", 1200, FaultConfig::none()),
    ] {
        let adus = seq_workload(ADUS, adu_bytes);
        let tel = Telemetry::new();
        let r = run_alf_transfer_scenario(
            10,
            LinkConfig::lan(),
            faults,
            AlfConfig::default(),
            Substrate::Packet,
            &adus,
            None,
            &ScenarioOpts {
                telemetry: Some(tel.clone()),
                ..ScenarioOpts::default()
            },
        );
        assert!(r.complete && r.verified, "{label} failed: {r:?}");
        let send = stage_passes_per_byte(&tel, "alf/tu_encode");
        let verify = stage_passes_per_byte(&tel, "alf/verify");
        let gather = stage_passes_per_byte(&tel, "alf/gather");
        let copy = stage_passes_per_byte(&tel, "alf/decode_copy");
        let e2e = tel.ledger().passes_per_delivered_byte();
        assert_eq!(
            copy, 0.0,
            "{label}: the owned-frame ingest must never take the decode copy"
        );
        if label.ends_with("clean") {
            clean_send = send;
            clean_e2e = e2e;
        }
        if label.ends_with("1-frame ADUs") {
            single_frame_gather = gather;
        }
        t.row(&[
            label.into(),
            format!("{send:.3}"),
            format!("{verify:.3}"),
            format!("{gather:.3}"),
            format!("{copy:.3}"),
            format!("{e2e:.3}"),
        ]);
        json_rows.push(format!(
            "    {{\"path\": \"{label}\", \"send_passes_per_byte\": {send:.4}, \
             \"verify_passes_per_byte\": {verify:.4}, \
             \"gather_passes_per_byte\": {gather:.4}, \
             \"decode_copy_passes_per_byte\": {copy:.4}, \
             \"e2e_passes_per_byte\": {e2e:.4}}}"
        ));
    }
    print!("{}", t.render());
    // The acceptance bar: a fused send sweep is one read and one write per
    // payload byte — nothing hidden, so clean-link send cost is exactly 2.
    assert!(
        clean_send <= 2.0 + 1e-9,
        "send path must stay at \u{2264} 2 passes/byte with the checksum fused; got {clean_send:.4}"
    );
    assert!(
        clean_e2e < lay_e2e,
        "zero-copy e2e ({clean_e2e:.3}) must beat the layered stack ({lay_e2e:.3})"
    );
    assert_eq!(
        single_frame_gather, 0.0,
        "single-frame ADUs must release as views, without a gather pass"
    );

    let json = format!(
        "{{\n  \"experiment\": \"x10\",\n  \"adus\": {ADUS},\n  \"adu_bytes\": {ADU_BYTES},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_x10.json", &json) {
        Ok(()) => println!("\nwrote BENCH_x10.json"),
        Err(e) => eprintln!("\ncould not write BENCH_x10.json: {e}"),
    }
    println!(
        "\nThe send sweep is the datapath's only write pass: fragmentation\n\
         slices the ADU without copying, the checksum rides the encode sweep,\n\
         receive verifies the frame where it lies, and an ADU that fits one\n\
         frame is released as a view into it — the gather pass above only\n\
         counts multi-frame ADUs, and the decode-copy column stays zero\n\
         because both substrates hand owned frames to the zero-copy ingest."
    );
}

fn x8_robustness(budget_kib: usize) {
    heading(
        "X8",
        &format!("robustness: partitions, dead peers, {budget_kib} KiB receive budget (S2, S5)"),
        "'the proper model is ... regions of determinism within the cloud' — the \
         transport must survive the cloud misbehaving: partitions that heal resume \
         from buffered state, partitions that don't surface as an explicit \
         unreachable-peer report, and a memory-limited receiver pushes back through \
         its advertised window instead of silently wedging",
    );
    let budget = budget_kib * 1024;
    let adus = seq_workload(120, 8 * 1024); // ~80 ms unimpeded on the LAN profile
    let base = AlfConfig {
        recovery: RecoveryMode::TransportBuffer,
        max_retries: 30,
        ..AlfConfig::default()
    };
    let burst = FaultConfig::bursty_loss(ct_netsim::fault::GilbertElliott::bursty(0.02, 0.25, 0.7));
    let scenarios: [(&str, FaultConfig, AlfConfig, ScenarioOpts); 5] = [
        ("clean", FaultConfig::none(), base, ScenarioOpts::default()),
        (
            "burst loss ~5% + budget",
            burst,
            AlfConfig {
                reassembly_budget_bytes: budget,
                ..base
            },
            ScenarioOpts::default(),
        ),
        (
            "partition 2s (heals)",
            FaultConfig::none(),
            base,
            ScenarioOpts {
                outages: vec![(SimTime::from_millis(20), SimTime::from_millis(2020))],
                ..ScenarioOpts::default()
            },
        ),
        (
            "partition (never heals)",
            FaultConfig::none(),
            AlfConfig {
                peer_timeout: SimDuration::from_secs(2),
                ..base
            },
            ScenarioOpts {
                outages: vec![(SimTime::from_millis(20), SimTime::MAX)],
                ..ScenarioOpts::default()
            },
        ),
        (
            "loss 10%, media (shed)",
            FaultConfig::loss(0.10),
            AlfConfig {
                recovery: RecoveryMode::NoRetransmit,
                reassembly_budget_bytes: budget / 4,
                assembly_timeout: SimDuration::from_millis(200),
                ..base
            },
            ScenarioOpts::default(),
        ),
    ];
    let mut t = Table::new(&[
        "scenario",
        "outcome",
        "goodput",
        "elapsed",
        "delivered",
        "lost",
        "shed",
        "bp TUs",
        "bp sends",
        "probes",
        "rto backoff",
    ]);
    for (label, faults, cfg, opts) in &scenarios {
        let r = run_alf_transfer_scenario(
            7,
            LinkConfig::lan(),
            *faults,
            *cfg,
            Substrate::Packet,
            &adus,
            None,
            opts,
        );
        let outcome = if r.peer_unreachable {
            "PEER DEAD".into()
        } else if r.complete && r.adus_lost == 0 {
            "complete".into()
        } else {
            format!("partial ({} lost)", r.adus_lost)
        };
        t.row(&[
            (*label).into(),
            outcome,
            format!("{} Mb/s", fmt_f(r.goodput_mbps)),
            format!("{}", r.elapsed),
            format!("{}", r.adus_delivered),
            format!("{}", r.adus_lost),
            format!("{}", r.receiver.adus_shed),
            format!("{}", r.receiver.tus_backpressured),
            format!("{}", r.sender.send_backpressured),
            format!("{}", r.sender.zero_window_probes),
            format!("{}", r.sender.rto_backoff_events),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nThe healed partition costs elapsed time but zero data: buffered state\n\
         plus backed-off retransmission resumes where it left off. The unhealed\n\
         one ends in a bounded, explicit PEER DEAD report instead of infinite\n\
         retry. Under the receive budget the squeeze is visible end to end —\n\
         refused TUs, refused sends, and zero-window probes — while a media flow\n\
         sheds oldest-first and keeps playing."
    );
}

// ---------------------------------------------------------------------
// X11 — ADU lifecycle spans, latency attribution, HOL-blocking profiler
// ---------------------------------------------------------------------

fn x11_lifecycle_spans() {
    heading(
        "X11",
        "lifecycle spans: latency attribution and HOL stall, ALF vs stream",
        "'not all ADUs ... need be processed in the order originally intended; \
         the receiver can process out of order those ADUs that arrive out of \
         order' (\u{a7}2) — so an ALF receiver's HOL stall (time between an \
         ADU's last byte arriving and the application consuming it) stays \
         near zero under loss, while a byte-stream receiver holds arrived \
         bytes hostage behind the gap until retransmission fills it",
    );

    const ADUS: usize = 150;
    const ADU_BYTES: usize = 4000;
    const TRACE_CAP: usize = 65536;
    let loss_rates = [0.0f64, 0.01, 0.03];
    // Deep-queue LAN profile: lan()'s 64-frame drop-tail queue overflows
    // under the stream sender's congestion-avoidance probing, adding
    // congestion drops on top of the injected fault loss and muddying the
    // "0% loss" baseline. 4096 frames exceeds any window either substrate
    // can put in flight, so the fault injector is the *only* loss source
    // and the loss column means what it says. Both substrates get the
    // same link.
    let link = LinkConfig {
        queue_frames: 4096,
        ..LinkConfig::lan()
    };

    let adus = seq_workload(ADUS, ADU_BYTES);
    let stream_data: Vec<u8> = (0..ADUS as u64)
        .flat_map(|i| workload_payload(i, ADU_BYTES))
        .collect();

    let mut t = Table::new(&[
        "loss",
        "alf stall mean",
        "alf stall max",
        "stream stall mean",
        "stream stall p99",
        "stream stall max",
        "stalled ranges",
    ]);
    let mut json_rows = Vec::new();
    let mut alf_stall_means = Vec::new();
    let mut stream_stall_means = Vec::new();
    let mut attribution_3pct = String::new();

    for &loss in &loss_rates {
        let faults = if loss > 0.0 {
            FaultConfig::loss(loss)
        } else {
            FaultConfig::none()
        };

        // --- ALF substrate: full lifecycle spans from the flight record.
        let tel = Telemetry::with_tracing(TRACE_CAP);
        let r = run_alf_transfer_scenario(
            11,
            link,
            faults,
            AlfConfig::default(),
            Substrate::Packet,
            &adus,
            None,
            &ScenarioOpts {
                telemetry: Some(tel.clone()),
                ..ScenarioOpts::default()
            },
        );
        assert!(r.complete && r.verified, "alf run at {loss} failed: {r:?}");
        assert_eq!(
            tel.trace_overwritten(),
            0,
            "x11 trace capacity must hold the whole run"
        );
        let live = tel.span_report();
        assert_eq!(live.spans.len(), ADUS, "one span per ADU");

        // Determinism acceptance: the offline analyzer sees exactly what
        // the in-process stitcher saw — byte-identical reports from the
        // JSONL export.
        let jsonl = tel.trace_jsonl();
        let parsed_events = Event::parse_jsonl(&jsonl).expect("export must re-parse");
        let offline = SpanReport::from_parsed(&parsed_events);
        assert_eq!(
            live.render_attribution(),
            offline.render_attribution(),
            "offline attribution must reproduce the in-process stitching"
        );
        assert_eq!(
            live.render_timeline(usize::MAX),
            offline.render_timeline(usize::MAX)
        );
        if (loss - 0.03).abs() < 1e-9 {
            attribution_3pct = live.render_attribution();
            // Trace dumps are scratch artifacts: keep them under target/
            // so they never land in the repo root.
            let _ = std::fs::create_dir_all("target");
            if let Err(e) = std::fs::write("target/x11_alf_trace.jsonl", &jsonl) {
                eprintln!("could not write target/x11_alf_trace.jsonl: {e}");
            }
        }
        let alf_stall = live.stall_summary();
        assert_eq!(alf_stall.count as usize, ADUS);

        // --- Stream substrate: same bytes, same link, HOL from seg events.
        // Buffers sized past the whole transfer so flow-control overruns
        // never drop segments: every stall below is loss-induced, not an
        // artifact of a small receive window.
        let stream_cfg = StreamConfig {
            send_buffer: 1 << 20,
            recv_buffer: 1 << 20,
            ..StreamConfig::default()
        };
        let tel_s = Telemetry::with_tracing(TRACE_CAP);
        let rs = run_transfer_telemetry(11, link, faults, stream_cfg, &stream_data, Some(&tel_s));
        assert!(rs.complete, "stream run at {loss} failed");
        assert!(
            loss > 0.0 || rs.net_loss_rate == 0.0,
            "deep-queue baseline must see zero congestion loss, got {}",
            rs.net_loss_rate
        );
        assert_eq!(
            tel_s.trace_overwritten(),
            0,
            "x11 stream trace capacity must hold the whole run"
        );
        let stream_events = Event::parse_jsonl(&tel_s.trace_jsonl()).expect("stream export");
        let stalls = stream_stalls(&stream_events, ADU_BYTES as u64);
        assert_eq!(
            stalls.len(),
            ADUS,
            "every ADU-sized range must complete arrival and delivery"
        );
        let ss = stream_stall_summary(&stalls);
        if (loss - 0.03).abs() < 1e-9 {
            let _ = std::fs::create_dir_all("target");
            if let Err(e) = std::fs::write("target/x11_stream_trace.jsonl", tel_s.trace_jsonl()) {
                eprintln!("could not write target/x11_stream_trace.jsonl: {e}");
            }
        }

        let stalled = stalls.iter().filter(|st| st.stall_nanos() > 0).count();
        t.row(&[
            format!("{:.0}%", loss * 100.0),
            format!("{:.1} us", alf_stall.mean_us),
            format!("{} us", alf_stall.max_us),
            format!("{:.1} us", ss.mean_us),
            format!("{} us", ss.p99_us),
            format!("{} us", ss.max_us),
            format!("{stalled}/{}", stalls.len()),
        ]);
        json_rows.push(format!(
            "    {{\"loss_pct\": {:.1}, \"alf_stall_mean_us\": {:.2}, \
             \"alf_stall_max_us\": {}, \"stream_stall_mean_us\": {:.2}, \
             \"stream_stall_p99_us\": {}, \"stream_stall_max_us\": {}, \
             \"stream_stalled_ranges\": {stalled}}}",
            loss * 100.0,
            alf_stall.mean_us,
            alf_stall.max_us,
            ss.mean_us,
            ss.p99_us,
            ss.max_us,
        ));
        alf_stall_means.push(alf_stall.mean_us);
        stream_stall_means.push(ss.mean_us);
    }
    print!("{}", t.render());

    println!("\nALF stage attribution at 3% loss (per-ADU latency, fully accounted):");
    print!("{attribution_3pct}");

    // The acceptance bar (the paper's claim, measured): ALF stall stays
    // near zero at every loss rate, stream stall grows with loss.
    for (&loss, &mean) in loss_rates.iter().zip(&alf_stall_means) {
        assert!(
            mean < 1.0,
            "ALF HOL stall must stay near zero (loss {loss}: {mean:.2} us)"
        );
    }
    let (s0, s1, s3) = (
        stream_stall_means[0],
        stream_stall_means[1],
        stream_stall_means[2],
    );
    assert!(
        s0 <= s1 && s1 < s3,
        "stream HOL stall must grow with loss: {s0:.1} !<= {s1:.1} !< {s3:.1}"
    );
    assert!(s1 > 0.0, "1% loss must produce measurable stream stall");

    let json = format!(
        "{{\n  \"experiment\": \"x11\",\n  \"adus\": {ADUS},\n  \"adu_bytes\": {ADU_BYTES},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_x11.json", &json) {
        Ok(()) => println!("\nwrote BENCH_x11.json"),
        Err(e) => eprintln!("\ncould not write BENCH_x11.json: {e}"),
    }
    println!(
        "\nBoth substrates saw identical bytes, links, and seeds. The stall\n\
         column is the HOL metric: time between all of a 4000-byte range's\n\
         bytes having arrived at the receiver and the application being able\n\
         to consume them. Out-of-order ADU delivery pins it at ~0; in-order\n\
         byte-stream delivery lets one lost segment hold every later range\n\
         hostage for a retransmission round trip, and the damage grows with\n\
         the loss rate. Analyze the dumps offline with:\n\
         cargo run -p ct-telemetry --bin ct-trace -- target/x11_alf_trace.jsonl\n\
         cargo run -p ct-telemetry --bin ct-trace -- --adu-bytes 4000 target/x11_stream_trace.jsonl"
    );
}

// ---------------------------------------------------------------------
// X12 — hostile-wire survivability
// ---------------------------------------------------------------------

/// Every rejection reason the receive path can count (see
/// `alf_core::wire::WireError::reason` and the transport's
/// `alf.rx_rejected.{reason}` counters).
const X12_REJECT_REASONS: [&str; 10] = [
    "truncated",
    "unknown_type",
    "bad_checksum",
    "length_mismatch",
    "bad_name",
    "frag_out_of_range",
    "assoc_mismatch",
    "bad_parity",
    "replayed",
    "other",
];

fn x12_rejected_total(tel: &Telemetry) -> u64 {
    X12_REJECT_REASONS
        .iter()
        .map(|r| tel.metrics().counter(&format!("alf.rx_rejected.{r}")))
        .sum()
}

struct X12Run {
    goodput_mbps: f64,
    adversarial: u64,
    rejected: u64,
    replays_suppressed: u64,
    peak_reassembly: usize,
}

const X12_ADU_BYTES: usize = 6 * 1024;
const X12_BUDGET: usize = 96 * 1024;

/// One survivability transfer: a fixed buffered-recovery workload while the
/// data direction's [`ct_netsim::fault::Mutator`] truncates, extends,
/// header-flips, replays, and forges at `hostility`. Every delivered ADU is
/// byte-compared against what was submitted, inside the pump loop.
fn x12_hostile_transfer(seed: u64, hostility: f64) -> X12Run {
    const ADUS: u64 = 64;
    let tel = Telemetry::new();
    let mut net = Network::new(seed);
    let node_a = net.add_node();
    let node_b = net.add_node();
    net.connect(node_a, node_b, LinkConfig::lan(), FaultConfig::none());
    net.attach_telemetry(tel.clone());
    if hostility > 0.0 {
        net.set_mutator(node_a, node_b, MutatorConfig::hostile(hostility));
    }
    // Multi-fragment ADUs by construction (6 KiB over a ~1.4 KiB MTU): a
    // forged or replayed single frame can never complete an ADU on its own,
    // so content integrity reduces to the per-frame checksum plus the
    // assembler's metadata-consistency and replay-window checks.
    let cfg = AlfConfig {
        recovery: RecoveryMode::TransportBuffer,
        reassembly_budget_bytes: X12_BUDGET,
        window_adus: 16,
        max_retries: 200,
        ..AlfConfig::default()
    };
    let mut a = AduTransport::new(cfg);
    let mut b = AduTransport::new(cfg);
    a.attach_telemetry(tel.clone(), "sender");
    b.attach_telemetry(tel.clone(), "receiver");

    let expected: Vec<Vec<u8>> = (0..ADUS)
        .map(|i| workload_payload(i, X12_ADU_BYTES))
        .collect();
    let mut seen = vec![false; ADUS as usize];
    let mut delivered = 0u64;
    let mut next_offer = 0u64;
    let mut peak = 0usize;
    let mut done_at = None;

    for _ in 0..8_000_000u64 {
        let now = net.now();
        while next_offer < ADUS {
            let payload = expected[next_offer as usize].clone();
            match a.send_adu(AduName::Seq { index: next_offer }, payload) {
                Ok(_) => next_offer += 1,
                Err(_) => break,
            }
        }
        let mut moved = false;
        for msg in a.poll(now) {
            moved = true;
            let _ = net.send(node_a, node_b, msg);
        }
        for msg in b.poll(now) {
            moved = true;
            let _ = net.send(node_b, node_a, msg);
        }
        while let Some(frame) = net.recv(node_b) {
            moved = true;
            b.on_message(net.now(), &frame.payload);
        }
        while let Some(frame) = net.recv(node_a) {
            moved = true;
            a.on_message(net.now(), &frame.payload);
        }

        while let Some((adu, _latency)) = b.recv_adu() {
            let AduName::Seq { index } = adu.name else {
                panic!(
                    "x12 hostility {hostility}: delivered ADU with foreign name {:?}",
                    adu.name
                );
            };
            let idx = index as usize;
            assert!(
                idx < seen.len() && !seen[idx],
                "x12 hostility {hostility}: ADU {index} delivered twice or out of range"
            );
            assert!(
                adu.payload == expected[idx],
                "x12 hostility {hostility}: ADU {index} delivered with corrupted bytes"
            );
            seen[idx] = true;
            delivered += 1;
        }
        peak = peak.max(b.reassembly_bytes());
        assert!(
            b.reassembly_bytes() <= X12_BUDGET,
            "x12 hostility {hostility}: reassembly {} bytes exceeds the {X12_BUDGET} byte budget",
            b.reassembly_bytes()
        );
        assert!(
            a.take_loss_reports().is_empty(),
            "x12 hostility {hostility}: buffered sender gave up under a recoverable adversary"
        );

        if next_offer == ADUS && a.send_complete() && delivered == ADUS {
            done_at = Some(net.now());
            break;
        }
        assert!(
            net.now() < SimTime::from_secs(120),
            "x12 hostility {hostility}: no convergence after 120 simulated seconds \
             ({delivered}/{ADUS} delivered)"
        );

        if !net.is_idle() {
            net.step();
        } else if moved {
            // Queued output leaves at the current instant on the next pass.
        } else {
            let timer = [a.next_timeout(), b.next_timeout()]
                .into_iter()
                .flatten()
                .min();
            match timer {
                Some(t) if t > now => net.advance(t.saturating_since(now)),
                Some(_) => {}
                None if b.reassembly_bytes() > 0 => {
                    net.advance(cfg.assembly_timeout + SimDuration::from_millis(1));
                }
                None => panic!(
                    "x12 hostility {hostility}: wedged with nothing scheduled \
                     ({delivered}/{ADUS} delivered)"
                ),
            }
        }
    }
    let done_at = done_at.unwrap_or_else(|| {
        panic!("x12 hostility {hostility}: iteration cap hit ({delivered}/{ADUS} delivered)")
    });
    let secs = done_at.as_nanos() as f64 / 1e9;
    let replays_suppressed = tel.metrics().counter("alf.rx_rejected.replayed");
    X12Run {
        goodput_mbps: (ADUS as usize * X12_ADU_BYTES) as f64 * 8.0 / secs / 1e6,
        adversarial: net
            .mutator_stats(node_a, node_b)
            .map(|s| s.total())
            .unwrap_or(0),
        rejected: x12_rejected_total(&tel),
        replays_suppressed,
        peak_reassembly: peak,
    }
}

struct X12Flood {
    sends: u64,
    adversarial: u64,
    rejected: u64,
    replays_suppressed: u64,
    delivered: u64,
    peak_reassembly: usize,
}

/// The volume phase: a one-way hostile firehose of genuine template frames
/// with every injection knob at full, pumped until the mutator has produced
/// `target` adversarial frames. The receiver must stay total, byte-exact,
/// and inside its reassembly budget the whole way — its control replies go
/// nowhere, so nothing here depends on sender cooperation.
fn x12_frame_flood(target: u64) -> X12Flood {
    const ADUS: u64 = 16;
    const BUDGET: usize = 64 * 1024;
    let cfg = AlfConfig {
        recovery: RecoveryMode::TransportBuffer,
        reassembly_budget_bytes: BUDGET,
        window_adus: ADUS as usize,
        ..AlfConfig::default()
    };
    let expected: Vec<Vec<u8>> = (0..ADUS)
        .map(|i| workload_payload(i, X12_ADU_BYTES))
        .collect();

    // Harvest genuine template frames from a scratch sender: the flood
    // mutates and replays real traffic, not synthetic bytes.
    let mut templates = Vec::new();
    {
        let mut s = AduTransport::new(cfg);
        for (i, payload) in expected.iter().enumerate() {
            s.send_adu(AduName::Seq { index: i as u64 }, payload.clone())
                .expect("window admits the flood templates");
        }
        let mut t = SimTime::ZERO;
        for _ in 0..64 {
            let msgs = s.poll(t);
            if msgs.is_empty() && !templates.is_empty() {
                break;
            }
            templates.extend(msgs);
            t += SimDuration::from_millis(1);
        }
    }
    assert!(!templates.is_empty(), "template harvest produced no frames");

    let tel = Telemetry::new();
    let mut net = Network::new(0xF100D);
    let node_a = net.add_node();
    let node_b = net.add_node();
    net.connect(node_a, node_b, LinkConfig::lan(), FaultConfig::none());
    net.attach_telemetry(tel.clone());
    net.set_mutator(
        node_a,
        node_b,
        MutatorConfig {
            truncate: 0.2,
            extend: 0.2,
            header_flip: 0.25,
            replay: 1.0,
            forge_random: 1.0,
            forge_grammar: 1.0,
            ..MutatorConfig::default()
        },
    );
    let mut r = AduTransport::new(cfg);
    r.attach_telemetry(tel.clone(), "receiver");

    let mut seen = vec![false; ADUS as usize];
    let mut delivered = 0u64;
    let mut peak = 0usize;
    let mut sends = 0u64;
    let mut next_template = 0usize;
    loop {
        let done = net
            .mutator_stats(node_a, node_b)
            .expect("mutator attached")
            .total();
        if done >= target {
            break;
        }
        for _ in 0..48 {
            let payload = templates[next_template % templates.len()].clone();
            next_template += 1;
            let _ = net.send(node_a, node_b, payload);
            sends += 1;
        }
        net.run_until_idle();
        while let Some(frame) = net.recv(node_b) {
            r.on_message(net.now(), &frame.payload);
        }
        // Control replies (ACKs, NACKs, window probes) are dropped on the
        // floor; poll still runs so expiry sweeps and shed notices fire.
        let _ = r.poll(net.now());
        while let Some((adu, _latency)) = r.recv_adu() {
            let AduName::Seq { index } = adu.name else {
                panic!("x12 flood: delivered ADU with foreign name {:?}", adu.name);
            };
            let idx = index as usize;
            assert!(
                idx < seen.len() && !seen[idx],
                "x12 flood: ADU {index} delivered twice or out of range"
            );
            assert!(
                adu.payload == expected[idx],
                "x12 flood: ADU {index} delivered with corrupted bytes"
            );
            seen[idx] = true;
            delivered += 1;
        }
        peak = peak.max(r.reassembly_bytes());
        assert!(
            r.reassembly_bytes() <= BUDGET,
            "x12 flood: reassembly {} bytes exceeds the {BUDGET} byte budget",
            r.reassembly_bytes()
        );
        // Nudge the clock so assembly deadlines fire and forged phantom
        // assemblies cycle out instead of pinning the budget forever.
        net.advance(SimDuration::from_millis(2));
    }
    let replays_suppressed = tel.metrics().counter("alf.rx_rejected.replayed");
    X12Flood {
        sends,
        adversarial: net
            .mutator_stats(node_a, node_b)
            .map(|s| s.total())
            .unwrap_or(0),
        rejected: x12_rejected_total(&tel),
        replays_suppressed,
        delivered,
        peak_reassembly: peak,
    }
}

fn x12_hostile_wire() {
    heading(
        "X12",
        "hostile-wire survivability: 10^6 adversarial frames, zero corruption",
        "'some applications may find damaged data of use' (\u{a7}5) is an option, \
         never an obligation: a receiver on a hostile wire must stay total \
         (reject, never panic), bounded (quotas, not hope), and honest (only \
         byte-exact ADUs reach the application)",
    );

    let levels = [0.0f64, 0.05, 0.15];
    let mut t = Table::new(&[
        "hostility",
        "goodput",
        "adversarial",
        "rejected",
        "replays",
        "peak reasm",
    ]);
    let mut runs = Vec::new();
    for &p in &levels {
        let run = x12_hostile_transfer(12, p);
        t.row(&[
            format!("{:.0}%", p * 100.0),
            format!("{} Mb/s", fmt_f(run.goodput_mbps)),
            format!("{}", run.adversarial),
            format!("{}", run.rejected),
            format!("{}", run.replays_suppressed),
            format!("{} B", run.peak_reassembly),
        ]);
        runs.push((p, run));
    }
    print!("{}", t.render());

    // Graceful degradation: every hostility level still completes (asserted
    // inside the run), and goodput falls below the clean baseline instead
    // of collapsing to zero or wedging.
    let clean = runs[0].1.goodput_mbps;
    for (p, run) in runs.iter().skip(1) {
        assert!(
            run.goodput_mbps > 0.0 && run.goodput_mbps < clean,
            "hostility {p}: goodput {} must degrade from the clean {} without dying",
            run.goodput_mbps,
            clean
        );
        assert!(
            run.rejected > 0 && run.adversarial > 0,
            "hostility {p}: the adversary must have been exercised and rejected"
        );
    }

    let sweep_total: u64 = runs.iter().map(|(_, r)| r.adversarial).sum();
    let flood = x12_frame_flood(1_000_000u64.saturating_sub(sweep_total));
    let grand_total = sweep_total + flood.adversarial;
    assert!(
        grand_total >= 1_000_000,
        "x12 must drive at least 10^6 adversarial frames, got {grand_total}"
    );
    assert!(
        flood.rejected > 0 && flood.replays_suppressed > 0,
        "the flood must exercise the rejection and replay-window paths"
    );

    println!(
        "\nflood: {} template sends, {} adversarial frames, {} rejected, \
         {} replays suppressed, {}/16 ADUs delivered byte-exact, peak \
         reassembly {} B (budget {} B)",
        flood.sends,
        flood.adversarial,
        flood.rejected,
        flood.replays_suppressed,
        flood.delivered,
        flood.peak_reassembly,
        64 * 1024,
    );
    println!(
        "adversarial frames total: {grand_total} (>= 10^6), zero panics, zero corrupted deliveries"
    );

    let rows: Vec<String> = runs
        .iter()
        .map(|(p, r)| {
            format!(
                "    {{\"hostility_pct\": {:.1}, \"goodput_mbps\": {:.2}, \
                 \"adversarial\": {}, \"rejected\": {}, \"replays_suppressed\": {}, \
                 \"peak_reassembly_bytes\": {}}}",
                p * 100.0,
                r.goodput_mbps,
                r.adversarial,
                r.rejected,
                r.replays_suppressed,
                r.peak_reassembly
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"x12\",\n  \"adus\": 64,\n  \"adu_bytes\": {X12_ADU_BYTES},\n  \
         \"rows\": [\n{}\n  ],\n  \"flood\": {{\"sends\": {}, \"adversarial\": {}, \
         \"rejected\": {}, \"replays_suppressed\": {}, \"delivered\": {}, \
         \"peak_reassembly_bytes\": {}}},\n  \"adversarial_total\": {grand_total}\n}}\n",
        rows.join(",\n"),
        flood.sends,
        flood.adversarial,
        flood.rejected,
        flood.replays_suppressed,
        flood.delivered,
        flood.peak_reassembly,
    );
    match std::fs::write("BENCH_x12.json", &json) {
        Ok(()) => println!("\nwrote BENCH_x12.json"),
        Err(e) => eprintln!("\ncould not write BENCH_x12.json: {e}"),
    }
    println!(
        "\nEvery adversarial frame either died at a typed rejection (counted\n\
         per reason in alf.rx_rejected.*), was absorbed by the replay window,\n\
         or charged a bounded quota that evicted deterministically. Nothing\n\
         panicked, nothing corrupt was delivered, and goodput under attack\n\
         degraded instead of collapsing — the robustness floor the\n\
         many-association server (ROADMAP item 1) will stand on."
    );
}

// ---------------------------------------------------------------------------
// X13: many-association server — flat per-ADU cost from 1 to 100k
// ---------------------------------------------------------------------------

/// One X13 sweep point: `assocs` associations moving `adus_per_assoc` ADUs
/// each into one server over ideal links.
fn x13_point(
    assocs: usize,
    clients: usize,
    adus_per_assoc: usize,
    batch_frames: Option<usize>,
) -> ct_server::cluster::ClusterReport {
    assert_eq!(assocs % clients, 0, "sweep points divide evenly");
    let mut server = ct_server::ServerConfig::default();
    if let Some(b) = batch_frames {
        server.batch_frames = b;
    }
    let cfg = ct_server::cluster::ClusterConfig {
        clients,
        assocs_per_client: assocs / clients,
        adus_per_assoc,
        adu_bytes: X13_ADU_BYTES,
        server,
        alf: AlfConfig::default(),
        link: LinkConfig::ideal(),
        faults: FaultConfig::none(),
        ..Default::default()
    };
    let r = ct_server::cluster::run_cluster(13, &cfg, None);
    assert!(
        r.complete,
        "x13 {assocs}-association run did not complete: {r:?}"
    );
    assert!(
        r.verified,
        "x13 {assocs}-association run delivered corrupt bytes"
    );
    assert_eq!(r.adus_lost, 0, "clean links must lose nothing");
    assert_eq!(
        r.adus_delivered, r.adus_offered,
        "every offered ADU must arrive"
    );
    r
}

const X13_ADU_BYTES: usize = 600;

fn x13_many_assoc(
    assoc_override: Option<usize>,
    batch_override: Option<usize>,
    adus_override: Option<usize>,
) {
    heading(
        "X13",
        "many-association ALF server: per-ADU cost vs. concurrent associations",
        "the ALF argument is about how a server should be organized: the ADU \
         is the unit the application names, so a server terminating many \
         clients should pay a flat per-ADU cost no matter how many \
         associations it holds. Sharded association table + per-shard timer \
         wheels + batched event loop make that claim measurable",
    );

    if let Some(n) = assoc_override {
        // Smoke mode: one point, no baseline rewrite.
        let clients = if n >= 4 && n % 4 == 0 { 4 } else { 1 };
        let r = x13_point(n, clients, adus_override.unwrap_or(4), batch_override);
        println!(
            "smoke: {} associations over {clients} client nodes — {} ADUs \
             delivered and verified, {} batches, {:.0} bytes/assoc, \
             {:.0} ns/ADU",
            r.assocs,
            r.adus_delivered,
            r.batches,
            r.bytes_per_assoc(),
            r.ns_per_adu()
        );
        return;
    }

    // The sweep: association count grows 1 → 1k → 100k while the per-point
    // ADU volume stays large enough to time. Wall-clock ns/ADU is asserted
    // flat in-process (machine-dependent, so it is *not* written to the
    // gated baseline); everything in BENCH_x13.json is simulator- or
    // capacity-derived and reproduces bit-identically. The two ratio
    // points run three times and keep the fastest wall clock — the
    // standard noise estimator: scheduling interference only ever adds
    // time, so the minimum is the closest observation of the true cost.
    let points = [
        (1usize, 1usize, 20_000usize, 3usize),
        (1_000, 2, 20, 1),
        (100_000, 4, 4, 3),
    ];
    let mut t = Table::new(&[
        "assocs",
        "ADUs",
        "ns/ADU (wall)",
        "bytes/assoc",
        "batches",
        "sim elapsed ms",
    ]);
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for &(assocs, clients, adus, reps) in &points {
        let r = (0..reps)
            .map(|_| x13_point(assocs, clients, adus, None))
            .min_by_key(|r| r.wall)
            .expect("reps >= 1");
        t.row(&[
            format!("{assocs}"),
            format!("{}", r.adus_delivered),
            format!("{:.0}", r.ns_per_adu()),
            format!("{:.0}", r.bytes_per_assoc()),
            format!("{}", r.batches),
            format!("{:.2}", r.elapsed.as_nanos() as f64 / 1e6),
        ]);
        rows.push(format!(
            "    {{\"assocs\": {assocs}, \"clients\": {clients}, \
             \"adus_per_assoc\": {adus}, \"adus_delivered\": {}, \
             \"frames_in\": {}, \"frames_out\": {}, \"batches\": {}, \
             \"elapsed_ns\": {}, \"mem_bytes_per_assoc\": {:.0}}}",
            r.adus_delivered,
            r.frames_in,
            r.frames_out,
            r.batches,
            r.elapsed.as_nanos(),
            r.bytes_per_assoc(),
        ));
        reports.push(r);
    }
    print!("{}", t.render());

    // The acceptance bar (ISSUE 8): ≥100k concurrent associations, per-ADU
    // cost at 100k within 2× of the single-association cost, and per-
    // association memory bounded.
    let single = reports[0].ns_per_adu();
    let at_scale = reports[2].ns_per_adu();
    assert!(reports[2].assocs >= 100_000);
    assert!(
        at_scale <= single * 2.0,
        "per-ADU cost must stay flat: {at_scale:.0} ns/ADU at 100k vs \
         {single:.0} ns/ADU at 1 association (> 2x)"
    );
    assert!(
        reports[2].bytes_per_assoc() < 16.0 * 1024.0,
        "an association must stay under 16 KiB at 100k-scale, got {:.0}",
        reports[2].bytes_per_assoc()
    );

    let json = format!(
        "{{\n  \"experiment\": \"x13\",\n  \"adu_bytes\": {X13_ADU_BYTES},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    match std::fs::write("BENCH_x13.json", &json) {
        Ok(()) => println!("\nwrote BENCH_x13.json"),
        Err(e) => eprintln!("\ncould not write BENCH_x13.json: {e}"),
    }
    println!(
        "\nOne server process terminated every association above. Frames hash\n\
         by (peer, association) to a shard, expired retransmit clocks surface\n\
         from hashed timer wheels instead of per-association scans, and the\n\
         event loop drains ingress in batches with one clock read per batch —\n\
         which is why the ns/ADU column does not grow with the table."
    );
}

// ---------------------------------------------------------------------------
// X14: server-scale observability plane — armed overhead and fidelity
// ---------------------------------------------------------------------------

/// Span-sampling parameters for the armed X14 runs. At 1% of the 16-bit
/// association-id space, a 100k-association cluster keeps full
/// flight-recorder spans for ~1k associations — recorder traffic scales
/// with the sample, not the population.
const X14_SAMPLE_SEED: u64 = 14;
const X14_SAMPLE_RATE: f64 = 0.01;
/// Flight-recorder ring capacity for armed runs. The ring overwrites
/// oldest-first, so memory stays bounded while the recorded-event total
/// (`trace_len + trace_overwritten`) remains exactly reproducible.
const X14_TRACE_CAP: usize = 1 << 15;

/// One X13-shaped cluster run with the observability plane armed
/// (tracing ring + deterministic span sampling + per-shard rollups) or
/// fully unarmed (no telemetry attached at all — the X13 baseline).
fn x14_run(
    assocs: usize,
    clients: usize,
    adus_per_assoc: usize,
    batch_frames: Option<usize>,
    armed: bool,
) -> (ct_server::cluster::ClusterReport, Option<Telemetry>) {
    assert_eq!(assocs % clients, 0, "points divide evenly");
    let mut server = ct_server::ServerConfig::default();
    if let Some(b) = batch_frames {
        server.batch_frames = b;
    }
    let cfg = ct_server::cluster::ClusterConfig {
        clients,
        assocs_per_client: assocs / clients,
        adus_per_assoc,
        adu_bytes: X13_ADU_BYTES,
        server,
        alf: AlfConfig::default(),
        link: LinkConfig::ideal(),
        faults: FaultConfig::none(),
        ..Default::default()
    };
    let tel = armed.then(|| {
        let tel = Telemetry::with_tracing(X14_TRACE_CAP);
        tel.enable_span_sampling(X14_SAMPLE_SEED, X14_SAMPLE_RATE);
        tel
    });
    let r = ct_server::cluster::run_cluster(13, &cfg, tel.clone());
    assert!(
        r.complete && r.verified && r.adus_lost == 0,
        "x14 {assocs}-association run (armed={armed}) failed: {r:?}"
    );
    (r, tel)
}

/// Dump the armed run's registry as metrics JSONL — the snapshot `ct-top`
/// renders offline (verify.sh feeds it to `ct-top --self-check`).
fn x14_write_rollup(tel: &Telemetry) {
    let jsonl = tel.metrics().to_jsonl();
    let _ = std::fs::create_dir_all("target");
    match std::fs::write("target/x14_rollup.jsonl", &jsonl) {
        Ok(()) => println!(
            "\nwrote target/x14_rollup.jsonl ({} metrics)",
            jsonl.lines().count()
        ),
        Err(e) => eprintln!("\ncould not write target/x14_rollup.jsonl: {e}"),
    }
}

fn x14_observability(
    assoc_override: Option<usize>,
    batch_override: Option<usize>,
    adus_override: Option<usize>,
) {
    heading(
        "X14",
        "observability plane armed at 100k associations: sampled spans, rollups",
        "\u{a7}6's discipline applied to the server's own introspection: \
         watching 100 000 associations must not cost the datapath. \
         Deterministic span sampling keeps recorder traffic O(sample), \
         per-shard registries merge into one rollup, and the event loop \
         attributes its own batch phases — all while the delivery counters \
         stay bit-identical to an unarmed run",
    );

    if let Some(n) = assoc_override {
        // Smoke mode: one small armed point — exercises sampling, the
        // rollup publisher and the ct-top snapshot without the 100k
        // overhead comparison (and without touching BENCH_x14.json).
        let clients = if n >= 4 && n % 4 == 0 { 4 } else { 1 };
        let (r, tel) = x14_run(n, clients, adus_override.unwrap_or(4), batch_override, true);
        let tel = tel.expect("smoke runs armed");
        print!("{}", ct_telemetry::top::render_top(&tel.metrics()));
        x14_write_rollup(&tel);
        println!(
            "smoke: {} associations armed — {} ADUs delivered and verified, \
             {} batches, {} recorder events",
            r.assocs,
            r.adus_delivered,
            r.batches,
            tel.trace_len() as u64 + tel.trace_overwritten(),
        );
        return;
    }

    // The full comparison: X13's 100k point, unarmed vs armed, interleaved.
    // Wall clocks are min-of-REPS per side (scheduling noise only ever adds
    // time) and the whole attempt retries — shared machines are noisy in
    // exactly one direction, so a clean attempt is proof, a dirty one is
    // not disproof.
    const POINT: (usize, usize, usize) = (100_000, 4, 4);
    const REPS: usize = 3;
    const ATTEMPTS: usize = 3;
    const BOUND: f64 = 1.02;
    let (assocs, clients, adus) = POINT;

    // One untimed warm-up pays the process's one-time costs (allocator
    // growth, page faults) before either side is measured.
    let _ = x14_run(assocs, clients, adus, None, false);

    let mut best_ratio = f64::INFINITY;
    let mut kept: Option<(ct_server::cluster::ClusterReport, Telemetry)> = None;
    for attempt in 1..=ATTEMPTS {
        let mut base_ns = f64::INFINITY;
        let mut armed_ns = f64::INFINITY;
        for _ in 0..REPS {
            let (rb, _) = x14_run(assocs, clients, adus, None, false);
            let (ra, tel) = x14_run(assocs, clients, adus, None, true);
            // The plane observes; it must never steer. Every
            // simulator-derived number agrees bit-for-bit.
            assert_eq!(
                rb.adus_delivered, ra.adus_delivered,
                "armed run changed delivery"
            );
            assert_eq!(rb.batches, ra.batches, "armed run changed batching");
            assert_eq!(rb.frames_in, ra.frames_in, "armed run changed ingress");
            assert_eq!(rb.frames_out, ra.frames_out, "armed run changed egress");
            assert_eq!(rb.elapsed, ra.elapsed, "armed run changed sim time");
            base_ns = base_ns.min(rb.ns_per_adu());
            armed_ns = armed_ns.min(ra.ns_per_adu());
            kept = Some((ra, tel.expect("armed run carries telemetry")));
        }
        let ratio = armed_ns / base_ns;
        println!(
            "attempt {attempt}: unarmed {base_ns:.0} ns/ADU, armed {armed_ns:.0} ns/ADU, \
             ratio {ratio:.4}"
        );
        best_ratio = best_ratio.min(ratio);
        if best_ratio <= BOUND {
            break;
        }
    }
    assert!(
        best_ratio <= BOUND,
        "armed observability plane must cost <= {:.0}% ns/ADU at {assocs} \
         associations; best ratio over {ATTEMPTS} attempts was {best_ratio:.4}",
        (BOUND - 1.0) * 100.0
    );

    let (r, tel) = kept.expect("at least one attempt ran");
    let trace_events = tel.trace_len() as u64 + tel.trace_overwritten();
    let stuck = tel.metrics().counter("server.rollup.stuck_assocs");
    println!("\nrollup of the armed {assocs}-association run:");
    print!("{}", ct_telemetry::top::render_top(&tel.metrics()));
    x14_write_rollup(&tel);

    let json = format!(
        "{{\n  \"experiment\": \"x14\",\n  \"assocs\": {assocs},\n  \
         \"adu_bytes\": {X13_ADU_BYTES},\n  \"sample_rate_pct\": {:.1},\n  \
         \"adus_delivered\": {},\n  \"batches\": {},\n  \"frames_in\": {},\n  \
         \"frames_out\": {},\n  \"elapsed_ns\": {},\n  \"trace_events\": {trace_events},\n  \
         \"stuck_assocs\": {stuck}\n}}\n",
        X14_SAMPLE_RATE * 100.0,
        r.adus_delivered,
        r.batches,
        r.frames_in,
        r.frames_out,
        r.elapsed.as_nanos(),
    );
    match std::fs::write("BENCH_x14.json", &json) {
        Ok(()) => println!("\nwrote BENCH_x14.json"),
        Err(e) => eprintln!("\ncould not write BENCH_x14.json: {e}"),
    }
    println!(
        "\nThe armed plane recorded {trace_events} flight-recorder events for\n\
         ~{:.0}% of associations (whole spans, chosen by a seeded hash of the\n\
         association id and ADU name), merged {} shard registries into the\n\
         rollup above, and attributed every batch's work to its event-loop\n\
         phase — for under {:.0}% of the unarmed per-ADU cost.",
        X14_SAMPLE_RATE * 100.0,
        r.assocs.min(ct_server::ServerConfig::default().shards),
        (BOUND - 1.0) * 100.0,
    );
}
