//! `bench-gate`: the bench-regression gate.
//!
//! Compares two benchmark JSON files (a committed baseline and a freshly
//! regenerated run) leaf by leaf and fails loudly when any numeric leaf
//! drifts beyond the tolerance (default 5% relative). The harness runs on
//! a deterministic simulator, so the committed `BENCH_*.json` numbers are
//! reproducible — drift means the *code* changed behaviour, not the
//! machine. Structure mismatches (missing keys, different array lengths,
//! string changes) fail too: a silently reshaped benchmark is a silently
//! skipped gate.
//!
//! ```text
//! bench-gate BASELINE FRESH [--tolerance PCT]
//! ```
//!
//! Exit status: 0 when every leaf is within tolerance, 1 when any leaf
//! drifted (all offenders listed), 2 on usage/IO/parse errors.

use ct_telemetry::json::{parse, JsonValue};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench-gate BASELINE FRESH [--tolerance PCT]");
    ExitCode::from(2)
}

/// Recursively compare `base` and `fresh`, appending one line per
/// divergence to `offences`. `path` is the JSON-pointer-ish location used
/// in the report.
fn compare(path: &str, base: &JsonValue, fresh: &JsonValue, tol: f64, offences: &mut Vec<String>) {
    match (base, fresh) {
        (JsonValue::Num(_), JsonValue::Num(_)) => {
            let (a, b) = (
                base.as_f64().unwrap_or(f64::NAN),
                fresh.as_f64().unwrap_or(f64::NAN),
            );
            // Deterministic-sim numbers reproduce exactly; the tolerance
            // only absorbs benign re-baselining. Two (near-)zeros agree by
            // definition; otherwise require relative drift <= tol against
            // the larger magnitude.
            let denom = a.abs().max(b.abs());
            if denom <= 1e-9 {
                return;
            }
            let drift = (a - b).abs() / denom;
            if drift > tol {
                offences.push(format!(
                    "{path}: baseline {a} vs fresh {b} ({:.1}% > {:.1}% tolerance)",
                    drift * 100.0,
                    tol * 100.0
                ));
            }
        }
        (JsonValue::Str(a), JsonValue::Str(b)) => {
            if a != b {
                offences.push(format!("{path}: baseline \"{a}\" vs fresh \"{b}\""));
            }
        }
        (JsonValue::Null, JsonValue::Null) => {}
        (JsonValue::Arr(a), JsonValue::Arr(b)) => {
            if a.len() != b.len() {
                offences.push(format!(
                    "{path}: array length changed, baseline {} vs fresh {}",
                    a.len(),
                    b.len()
                ));
            }
            // Still compare the common prefix: one run reports *every*
            // drifted leaf, not just the first structural mismatch.
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                compare(&format!("{path}[{i}]"), x, y, tol, offences);
            }
        }
        (JsonValue::Obj(a), JsonValue::Obj(b)) => {
            for (k, x) in a {
                match b.iter().find(|(bk, _)| bk == k) {
                    Some((_, y)) => compare(&format!("{path}.{k}"), x, y, tol, offences),
                    None => offences.push(format!("{path}.{k}: missing from fresh run")),
                }
            }
            for (k, _) in b {
                if !a.iter().any(|(ak, _)| ak == k) {
                    offences.push(format!("{path}.{k}: not in baseline (re-baseline needed?)"));
                }
            }
        }
        _ => offences.push(format!("{path}: value kind changed between runs")),
    }
}

fn load(path: &str) -> Result<JsonValue, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("bench-gate: cannot read {path}: {e}");
        ExitCode::from(2)
    })?;
    parse(&text).map_err(|e| {
        eprintln!("bench-gate: {path} is not valid bench JSON: {e}");
        ExitCode::from(2)
    })
}

fn main() -> ExitCode {
    let mut tolerance = 0.05f64;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => tolerance = pct / 100.0,
                _ => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ if arg.starts_with('-') => return usage(),
            _ => files.push(arg),
        }
    }
    let [baseline, fresh] = files.as_slice() else {
        return usage();
    };

    let base = match load(baseline) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let new = match load(fresh) {
        Ok(v) => v,
        Err(code) => return code,
    };

    let mut offences = Vec::new();
    compare("$", &base, &new, tolerance, &mut offences);
    if offences.is_empty() {
        println!(
            "bench-gate OK: {fresh} within {:.1}% of {baseline}",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-gate FAILED: {} leaf(s) drifted beyond {:.1}% ({baseline} -> {fresh}):",
            offences.len(),
            tolerance * 100.0
        );
        for line in &offences {
            eprintln!("  {line}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offences(base: &str, fresh: &str, tol: f64) -> Vec<String> {
        let mut out = Vec::new();
        compare(
            "$",
            &parse(base).unwrap(),
            &parse(fresh).unwrap(),
            tol,
            &mut out,
        );
        out
    }

    #[test]
    fn identical_and_within_tolerance_pass() {
        let doc = r#"{"rows":[{"x":100,"y":2.5},{"x":7}],"id":"x13"}"#;
        assert!(offences(doc, doc, 0.05).is_empty());
        assert!(offences(r#"{"x":100}"#, r#"{"x":104}"#, 0.05).is_empty());
    }

    #[test]
    fn two_leaf_regression_reports_both_offences_in_one_run() {
        // The regression that motivated this: two drifted leaves in one
        // array used to surface one at a time (fix, re-run, find the
        // next). One gate run must list them all.
        let base = r#"{"rows":[{"ns":100},{"ns":200},{"ns":300}]}"#;
        let fresh = r#"{"rows":[{"ns":150},{"ns":200},{"ns":450}]}"#;
        let out = offences(base, fresh, 0.05);
        assert_eq!(out.len(), 2, "both drifted leaves in one report: {out:?}");
        assert!(out[0].contains("$.rows[0].ns"), "{out:?}");
        assert!(out[1].contains("$.rows[2].ns"), "{out:?}");
    }

    #[test]
    fn array_length_mismatch_still_compares_common_prefix() {
        let base = r#"{"rows":[{"ns":100},{"ns":200}]}"#;
        let fresh = r#"{"rows":[{"ns":900}]}"#;
        let out = offences(base, fresh, 0.05);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].contains("array length changed"), "{out:?}");
        assert!(out[1].contains("$.rows[0].ns"), "{out:?}");
    }

    #[test]
    fn structural_mismatches_all_reported() {
        let base = r#"{"a":1,"b":"x","c":[1]}"#;
        let fresh = r#"{"a":"1","b":"y","d":[1]}"#;
        let out = offences(base, fresh, 0.05);
        // a: kind change; b: string change; c: missing; d: new key.
        assert_eq!(out.len(), 4, "{out:?}");
    }
}
